#include "obs/sink.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>

#include "common/check.h"
#include "obs/switch.h"

namespace gaugur::obs {

namespace {

std::atomic<TelemetrySink*> g_active{nullptr};

void RegisterSinkFlushHookOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterFlushHook(kFlushPrioritySink, [] {
      if (TelemetrySink* sink = g_active.load(std::memory_order_acquire)) {
        sink->Stop();
      }
    });
    InstallExitFlush();
  });
}

}  // namespace

const char* BackpressureName(OverflowPolicy policy) {
  return policy == OverflowPolicy::kBlock ? "block" : "drop_oldest";
}

std::optional<OverflowPolicy> BackpressureFromName(std::string_view name) {
  if (name == "block") return OverflowPolicy::kBlock;
  if (name == "drop_oldest") return OverflowPolicy::kDropOldest;
  return std::nullopt;
}

TelemetrySink::TelemetrySink(SinkConfig config)
    : config_(std::move(config)),
      log_(config_.event_log != nullptr ? config_.event_log
                                        : &EventLog::Global()),
      timeseries_(config_.timeseries != nullptr ? config_.timeseries
                                                : &FleetTimeSeries::Global()),
      registry_(config_.registry != nullptr ? config_.registry
                                            : &Registry::Global()),
      events_writer_(config_.directory, kEventsStream,
                     config_.max_segment_bytes),
      metrics_writer_(config_.directory, kMetricsStream,
                      config_.max_segment_bytes),
      timeseries_writer_(config_.directory, kTimeseriesStream,
                         config_.max_segment_bytes) {
  GAUGUR_CHECK_MSG(!config_.directory.empty(), "sink needs a directory");
  GAUGUR_CHECK_MSG(config_.flush_interval_ms > 0,
                   "sink flush interval must be positive");
  GAUGUR_CHECK_MSG(config_.metrics_every > 0,
                   "metrics_every must be nonzero");
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec) NoteWriteError("sink directory", config_.directory);

  TelemetrySink* expected = nullptr;
  GAUGUR_CHECK_MSG(
      g_active.compare_exchange_strong(expected, this,
                                       std::memory_order_acq_rel),
      "only one TelemetrySink may be live per process");

  log_->SetStreaming(true, config_.backpressure);
  if (config_.stream_timeseries) {
    timeseries_->SetStreaming(true, config_.timeseries_seal_after);
  }
  RegisterSinkFlushHookOnce();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    WriteManifestLocked(/*finalized=*/false);
  }
  writer_ = std::thread(&TelemetrySink::WriterLoop, this);
}

TelemetrySink::~TelemetrySink() { Stop(); }

TelemetrySink* TelemetrySink::Active() {
  return g_active.load(std::memory_order_acquire);
}

std::unique_ptr<TelemetrySink> TelemetrySink::FromEnv() {
  // The sink rides the same master switch as the sources it drains:
  // with obs off there is nothing to stream, so don't spin a writer.
  if (!Enabled()) return nullptr;
  const char* dir = std::getenv("GAUGUR_SINK_DIR");
  if (dir == nullptr || dir[0] == '\0') return nullptr;
  SinkConfig config;
  config.directory = dir;
  if (const char* bytes = std::getenv("GAUGUR_SINK_SEGMENT_BYTES")) {
    const unsigned long long parsed = std::strtoull(bytes, nullptr, 10);
    if (parsed > 0) config.max_segment_bytes = parsed;
  }
  if (const char* policy = std::getenv("GAUGUR_SINK_BACKPRESSURE")) {
    const auto parsed = BackpressureFromName(policy);
    GAUGUR_CHECK_MSG(parsed.has_value(),
                     "GAUGUR_SINK_BACKPRESSURE must be block or drop_oldest");
    config.backpressure = *parsed;
  }
  if (const char* ms = std::getenv("GAUGUR_SINK_FLUSH_MS")) {
    const int parsed = std::atoi(ms);
    if (parsed > 0) config.flush_interval_ms = parsed;
  }
  return std::make_unique<TelemetrySink>(std::move(config));
}

void TelemetrySink::NoteTick(double tick) {
  last_tick_.store(tick, std::memory_order_relaxed);
}

void TelemetrySink::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (writer_exited_) return;
  const std::uint64_t ticket = ++flush_requested_;
  wake_writer_.notify_all();
  cycle_done_.wait(lock, [&] {
    return flush_completed_ >= ticket || writer_exited_;
  });
}

void TelemetrySink::Stop() {
  if (stop_started_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  wake_writer_.notify_all();
  if (writer_.joinable()) writer_.join();
  // Detach the sources only after the writer's final drain, so nothing
  // recorded before Stop() is discarded unstreamed.
  log_->SetStreaming(false, config_.backpressure);
  if (config_.stream_timeseries) {
    timeseries_->SetStreaming(false, config_.timeseries_seal_after);
  }
  TelemetrySink* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

void TelemetrySink::WriterLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    wake_writer_.wait_for(
        lock, std::chrono::milliseconds(config_.flush_interval_ms), [&] {
          return stop_requested_ || flush_requested_ > flush_completed_;
        });
    if (stop_requested_) break;
    const bool flushing = flush_requested_ > flush_completed_;
    DrainCycleLocked(/*final_cycle=*/flushing);
    if (flushing) {
      events_writer_.Flush();
      metrics_writer_.Flush();
      timeseries_writer_.Flush();
      WriteManifestLocked(/*finalized=*/false);
      flush_completed_ = flush_requested_;
      cycle_done_.notify_all();
    }
  }
  DrainCycleLocked(/*final_cycle=*/true);
  events_writer_.Close();
  metrics_writer_.Close();
  timeseries_writer_.Close();
  WriteManifestLocked(/*finalized=*/true);
  writer_exited_ = true;
  flush_completed_ = flush_requested_;
  cycle_done_.notify_all();
}

void TelemetrySink::DrainCycleLocked(bool final_cycle) {
  bool rotated = false;

  const std::vector<Event> events = log_->DrainSince(event_cursor_);
  if (!events.empty()) {
    stats_.max_drain_batch =
        std::max(stats_.max_drain_batch,
                 static_cast<std::uint64_t>(events.size()));
    for (const Event& event : events) {
      rotated |= events_writer_.Append(event.ToJson().Dump(/*indent=*/-1),
                                       event.seq, event.tick);
    }
    event_cursor_ = events.back().seq;
    stats_.events_written += events.size();
  }

  if (config_.stream_timeseries) {
    const std::vector<SealedSeriesSegment> sealed =
        timeseries_->DrainSealed(/*seal_partial=*/final_cycle);
    for (const SealedSeriesSegment& segment : sealed) {
      for (const ServerSample& sample : segment.samples) {
        ++timeseries_seq_;
        rotated |= timeseries_writer_.Append(
            TimeseriesLineToJson(timeseries_seq_, segment.server, sample)
                .Dump(/*indent=*/-1),
            timeseries_seq_, sample.tick);
        ++stats_.timeseries_lines;
      }
    }
  }

  ++cycles_;
  if (final_cycle || cycles_ % config_.metrics_every == 0) {
    Snapshot current = registry_->Snap();
    const Snapshot delta = current.DeltaSince(metrics_baseline_);
    const bool empty = delta.counters.empty() && delta.gauges.empty() &&
                       delta.histograms.empty();
    if (!empty || final_cycle) {
      ++metrics_seq_;
      const double tick = last_tick_.load(std::memory_order_relaxed);
      rotated |= metrics_writer_.Append(
          MetricsDeltaToJson(delta, metrics_seq_, tick).Dump(/*indent=*/-1),
          metrics_seq_, tick);
      ++stats_.metrics_lines;
      metrics_baseline_ = std::move(current);
    }
  }

  if (rotated) {
    ++stats_.rotations;
    // Manifest rewritten on every rotation: a crash leaves at most the
    // open segments undescribed, never a stale segment list.
    WriteManifestLocked(/*finalized=*/false);
  }
}

Manifest TelemetrySink::BuildManifestLocked(bool finalized) const {
  Manifest manifest;
  manifest.backpressure = BackpressureName(config_.backpressure);
  manifest.finalized = finalized;
  StreamManifest events = events_writer_.Summary();
  events.dropped = log_->StreamDropped();
  manifest.streams[kEventsStream] = std::move(events);
  manifest.streams[kMetricsStream] = metrics_writer_.Summary();
  if (config_.stream_timeseries) {
    StreamManifest timeseries = timeseries_writer_.Summary();
    timeseries.dropped = timeseries_->StreamDropped();
    manifest.streams[kTimeseriesStream] = std::move(timeseries);
  }
  return manifest;
}

void TelemetrySink::WriteManifestLocked(bool finalized) {
  BuildManifestLocked(finalized).Write(config_.directory);
}

Manifest TelemetrySink::CurrentManifest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return BuildManifestLocked(/*finalized=*/writer_exited_);
}

TelemetrySink::Stats TelemetrySink::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.dropped = log_->StreamDropped();
  if (config_.stream_timeseries) {
    stats.dropped += timeseries_->StreamDropped();
  }
  stats.write_errors = events_writer_.write_errors() +
                       metrics_writer_.write_errors() +
                       timeseries_writer_.write_errors();
  return stats;
}

}  // namespace gaugur::obs
