#include "obs/timeseries.h"

#include <algorithm>

#include "common/check.h"
#include "obs/switch.h"

namespace gaugur::obs {

FleetTimeSeries::FleetTimeSeries(TimeSeriesConfig config) {
  Configure(config);
}

FleetTimeSeries& FleetTimeSeries::Global() {
  static FleetTimeSeries* series = new FleetTimeSeries();
  return *series;
}

void FleetTimeSeries::Configure(TimeSeriesConfig config) {
  GAUGUR_CHECK_MSG(config.capacity_per_server >= 2,
                   "time series needs capacity >= 2");
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  series_.clear();
  samples_seen_ = 0;
}

void FleetTimeSeries::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
  samples_seen_ = 0;
}

void FleetTimeSeries::Record(std::size_t server, ServerSample sample) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++samples_seen_;
  ServerSeries& series = series_[server];
  if (!series.samples.empty() &&
      sample.tick - series.samples.back().tick < series.min_gap) {
    return;
  }
  series.samples.push_back(std::move(sample));
  if (series.samples.size() > config_.capacity_per_server) {
    // Halving decimation: keep every other sample (newest included so the
    // most recent state survives), then double the minimum gap so the
    // thinned resolution is enforced for future appends too.
    std::vector<ServerSample> kept;
    kept.reserve(series.samples.size() / 2 + 1);
    for (std::size_t i = series.samples.size() % 2 == 0 ? 1 : 0;
         i < series.samples.size(); i += 2) {
      kept.push_back(std::move(series.samples[i]));
    }
    series.samples = std::move(kept);
    const double span =
        series.samples.back().tick - series.samples.front().tick;
    series.min_gap = std::max(
        series.min_gap * 2.0,
        span > 0.0 ? 2.0 * span / static_cast<double>(
                                      config_.capacity_per_server)
                   : 0.0);
    if (series.min_gap == 0.0) series.min_gap = 1e-9;
  }
}

std::vector<ServerSample> FleetTimeSeries::Series(std::size_t server) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(server);
  if (it == series_.end()) return {};
  return it->second.samples;
}

std::size_t FleetTimeSeries::NumServers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

FleetTimeSeries::Summary FleetTimeSeries::Summarize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Summary summary;
  summary.servers = series_.size();
  summary.samples_seen = samples_seen_;
  for (const auto& [server, series] : series_) {
    summary.samples_kept += series.samples.size();
    summary.max_gap = std::max(summary.max_gap, series.min_gap);
  }
  return summary;
}

JsonValue FleetTimeSeries::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject servers;
  for (const auto& [server, series] : series_) {
    JsonArray samples;
    for (const ServerSample& sample : series.samples) {
      JsonObject entry;
      entry["tick"] = sample.tick;
      JsonArray slots;
      for (const SlotSample& slot : sample.slots) {
        JsonObject slot_json;
        slot_json["game_id"] = static_cast<long long>(slot.game_id);
        slot_json["fps"] = slot.fps;
        JsonArray pressure;
        for (double p : slot.pressure) pressure.push_back(JsonValue(p));
        slot_json["pressure"] = JsonValue(std::move(pressure));
        slots.push_back(JsonValue(std::move(slot_json)));
      }
      entry["slots"] = JsonValue(std::move(slots));
      samples.push_back(JsonValue(std::move(entry)));
    }
    servers[std::to_string(server)] = JsonValue(std::move(samples));
  }
  return JsonValue(std::move(servers));
}

}  // namespace gaugur::obs
