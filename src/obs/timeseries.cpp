#include "obs/timeseries.h"

#include <algorithm>

#include "common/check.h"
#include "obs/switch.h"

namespace gaugur::obs {

JsonValue SlotSamplesToJson(const std::vector<SlotSample>& slots) {
  JsonArray array;
  array.reserve(slots.size());
  for (const SlotSample& slot : slots) {
    JsonObject slot_json;
    slot_json["game_id"] = static_cast<long long>(slot.game_id);
    slot_json["fps"] = slot.fps;
    JsonArray pressure;
    for (double p : slot.pressure) pressure.push_back(JsonValue(p));
    slot_json["pressure"] = JsonValue(std::move(pressure));
    array.push_back(JsonValue(std::move(slot_json)));
  }
  return JsonValue(std::move(array));
}

std::vector<SlotSample> SlotSamplesFromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsArray(), "slots must be a JSON array");
  std::vector<SlotSample> slots;
  slots.reserve(value.AsArray().size());
  for (const JsonValue& entry : value.AsArray()) {
    GAUGUR_CHECK_MSG(entry.IsObject(), "slot must be a JSON object");
    SlotSample slot;
    const JsonValue* game = entry.Find("game_id");
    GAUGUR_CHECK_MSG(game != nullptr && game->IsNumber(),
                     "slot missing numeric 'game_id'");
    slot.game_id = static_cast<int>(game->AsNumber());
    const JsonValue* fps = entry.Find("fps");
    GAUGUR_CHECK_MSG(fps != nullptr && fps->IsNumber(),
                     "slot missing numeric 'fps'");
    slot.fps = fps->AsNumber();
    const JsonValue* pressure = entry.Find("pressure");
    GAUGUR_CHECK_MSG(pressure != nullptr && pressure->IsArray(),
                     "slot missing 'pressure' array");
    for (const JsonValue& p : pressure->AsArray()) {
      GAUGUR_CHECK_MSG(p.IsNumber(), "pressure entry must be a number");
      slot.pressure.push_back(p.AsNumber());
    }
    slots.push_back(std::move(slot));
  }
  return slots;
}

FleetTimeSeries::FleetTimeSeries(TimeSeriesConfig config) {
  Configure(config);
}

FleetTimeSeries& FleetTimeSeries::Global() {
  static FleetTimeSeries* series = new FleetTimeSeries();
  return *series;
}

void FleetTimeSeries::Configure(TimeSeriesConfig config) {
  GAUGUR_CHECK_MSG(config.capacity_per_server >= 2,
                   "time series needs capacity >= 2");
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  series_.clear();
  samples_seen_ = 0;
}

void FleetTimeSeries::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
  samples_seen_ = 0;
  staging_.clear();
  sealed_.clear();
  stream_dropped_ = 0;
}

void FleetTimeSeries::SetStreaming(bool streaming, std::size_t seal_after) {
  GAUGUR_CHECK_MSG(seal_after > 0, "seal_after must be nonzero");
  std::lock_guard<std::mutex> lock(mutex_);
  streaming_ = streaming;
  seal_after_ = seal_after;
  if (!streaming) {
    staging_.clear();
    sealed_.clear();
  }
}

void FleetTimeSeries::SealLocked(std::size_t server,
                                 std::vector<ServerSample>* staged) {
  SealedSeriesSegment segment;
  segment.server = server;
  segment.samples = std::move(*staged);
  staged->clear();
  sealed_.push_back(std::move(segment));
  while (sealed_.size() > kMaxSealedSegments) {
    stream_dropped_ += sealed_.front().samples.size();
    sealed_.pop_front();
  }
}

std::vector<SealedSeriesSegment> FleetTimeSeries::DrainSealed(
    bool seal_partial) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (seal_partial) {
    for (auto& [server, staged] : staging_) {
      if (!staged.empty()) SealLocked(server, &staged);
    }
  }
  std::vector<SealedSeriesSegment> drained(
      std::make_move_iterator(sealed_.begin()),
      std::make_move_iterator(sealed_.end()));
  sealed_.clear();
  return drained;
}

std::uint64_t FleetTimeSeries::StreamDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stream_dropped_;
}

void FleetTimeSeries::Record(std::size_t server, ServerSample sample) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++samples_seen_;
  if (streaming_) {
    // Stage a full-fidelity copy BEFORE the thinning below: the stream
    // must carry what was recorded, not what the bounded ring kept.
    std::vector<ServerSample>& staged = staging_[server];
    staged.push_back(sample);
    if (staged.size() >= seal_after_) SealLocked(server, &staged);
  }
  ServerSeries& series = series_[server];
  series.last = sample;
  if (!series.samples.empty() &&
      sample.tick - series.samples.back().tick < series.min_gap) {
    return;
  }
  series.samples.push_back(std::move(sample));
  if (series.samples.size() > config_.capacity_per_server) {
    // Halving decimation: keep every other sample (newest included so the
    // most recent state survives), then double the minimum gap so the
    // thinned resolution is enforced for future appends too.
    std::vector<ServerSample> kept;
    kept.reserve(series.samples.size() / 2 + 1);
    for (std::size_t i = series.samples.size() % 2 == 0 ? 1 : 0;
         i < series.samples.size(); i += 2) {
      kept.push_back(std::move(series.samples[i]));
    }
    series.samples = std::move(kept);
    const double span =
        series.samples.back().tick - series.samples.front().tick;
    series.min_gap = std::max(
        series.min_gap * 2.0,
        span > 0.0 ? 2.0 * span / static_cast<double>(
                                      config_.capacity_per_server)
                   : 0.0);
    if (series.min_gap == 0.0) series.min_gap = 1e-9;
  }
}

std::vector<ServerSample> FleetTimeSeries::Series(std::size_t server) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(server);
  if (it == series_.end()) return {};
  return it->second.samples;
}

std::map<std::size_t, ServerSample> FleetTimeSeries::LatestSamples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::size_t, ServerSample> latest;
  for (const auto& [server, series] : series_) {
    latest[server] = series.last;
  }
  return latest;
}

std::vector<std::pair<std::size_t, double>> FleetTimeSeries::LatestMinFps()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::size_t, double>> latest;
  latest.reserve(series_.size());
  for (const auto& [server, series] : series_) {
    if (series.last.slots.empty()) continue;
    double min_fps = series.last.slots.front().fps;
    for (const SlotSample& slot : series.last.slots) {
      min_fps = std::min(min_fps, slot.fps);
    }
    latest.emplace_back(server, min_fps);
  }
  return latest;
}

std::size_t FleetTimeSeries::NumServers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

FleetTimeSeries::Summary FleetTimeSeries::Summarize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Summary summary;
  summary.servers = series_.size();
  summary.samples_seen = samples_seen_;
  for (const auto& [server, series] : series_) {
    summary.samples_kept += series.samples.size();
    summary.max_gap = std::max(summary.max_gap, series.min_gap);
  }
  return summary;
}

JsonValue FleetTimeSeries::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject servers;
  for (const auto& [server, series] : series_) {
    JsonArray samples;
    for (const ServerSample& sample : series.samples) {
      JsonObject entry;
      entry["tick"] = sample.tick;
      entry["slots"] = SlotSamplesToJson(sample.slots);
      samples.push_back(JsonValue(std::move(entry)));
    }
    servers[std::to_string(server)] = JsonValue(std::move(samples));
  }
  return JsonValue(std::move(servers));
}

}  // namespace gaugur::obs
