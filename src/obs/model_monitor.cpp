#include "obs/model_monitor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "obs/metrics.h"

namespace gaugur::obs {

namespace {

/// Live registry mirrors of the monitor's tallies, so dashboards that
/// only scrape the metric registry still see model health.
struct MonitorMetrics {
  Counter& predictions =
      Registry::Global().GetCounter("model_monitor.predictions");
  Counter& outcomes_joined =
      Registry::Global().GetCounter("model_monitor.outcomes_joined");
  Counter& observations_unmatched =
      Registry::Global().GetCounter("model_monitor.observations_unmatched");
  Counter& evicted_pending =
      Registry::Global().GetCounter("model_monitor.evicted_pending");
  Counter& drift_alerts =
      Registry::Global().GetCounter("model_monitor.drift_alerts");
  Counter& attr_cm_false_positive =
      Registry::Global().GetCounter("model_monitor.attr_cm_false_positive");
  Counter& attr_rm_overestimate =
      Registry::Global().GetCounter("model_monitor.attr_rm_overestimate");
  Counter& attr_capacity_pressure =
      Registry::Global().GetCounter("model_monitor.attr_capacity_pressure");
  Counter& qos_violations_observed =
      Registry::Global().GetCounter("model_monitor.qos_violations_observed");
  Gauge& cm_precision_bp =
      Registry::Global().GetGauge("model_monitor.cm_precision_bp");
  Gauge& cm_recall_bp =
      Registry::Global().GetGauge("model_monitor.cm_recall_bp");
  Gauge& cm_fpr_bp = Registry::Global().GetGauge("model_monitor.cm_fpr_bp");
  Gauge& rm_mae_milli_fps =
      Registry::Global().GetGauge("model_monitor.rm_mae_milli_fps");
  Histogram& rm_abs_error_fps = Registry::Global().GetHistogram(
      "model_monitor.rm_abs_error_fps",
      Histogram::ExponentialBounds(0.125, 2.0, 14));  // 0.125 .. 1024 FPS

  static MonitorMetrics& Get() {
    static MonitorMetrics metrics;
    return metrics;
  }
};

/// Gauges are delta-based; "set to value" is an add of the difference.
/// Callers serialize through the monitor mutex, so the read-modify-write
/// does not race with itself.
void SetGauge(Gauge& gauge, std::int64_t value) {
  gauge.Add(value - gauge.Value());
}

double SafeRatio(std::uint64_t num, std::uint64_t denom) {
  return denom == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(denom);
}

std::uint64_t AsU64(const JsonValue* value) {
  GAUGUR_CHECK_MSG(value != nullptr && value->IsNumber(),
                   "model_monitor: expected a numeric field");
  return static_cast<std::uint64_t>(value->AsNumber());
}

double AsF64(const JsonValue* value) {
  GAUGUR_CHECK_MSG(value != nullptr && value->IsNumber(),
                   "model_monitor: expected a numeric field");
  return value->AsNumber();
}

bool AsBool(const JsonValue* value) {
  GAUGUR_CHECK_MSG(value != nullptr && value->IsBool(),
                   "model_monitor: expected a boolean field");
  return value->AsBool();
}

const std::string& AsString(const JsonValue* value) {
  GAUGUR_CHECK_MSG(value != nullptr && value->IsString(),
                   "model_monitor: expected a string field");
  return value->AsString();
}

JsonValue DriftToJson(const DriftSummary& drift) {
  JsonObject object;
  object["has_reference"] = drift.has_reference;
  object["reference_samples"] =
      static_cast<unsigned long long>(drift.reference_samples);
  object["online_samples"] =
      static_cast<unsigned long long>(drift.online_samples);
  object["max_psi"] = drift.max_psi;
  object["features_over_threshold"] =
      static_cast<unsigned long long>(drift.features_over_threshold);
  JsonArray features;
  for (const PsiEntry& entry : drift.features) {
    JsonObject feature;
    feature["feature"] = entry.feature;
    feature["psi"] = entry.psi;
    feature["alert"] = entry.alert;
    features.push_back(JsonValue(std::move(feature)));
  }
  object["features"] = JsonValue(std::move(features));
  return JsonValue(std::move(object));
}

DriftSummary DriftFromJson(const JsonValue& value) {
  GAUGUR_CHECK_MSG(value.IsObject(), "drift section must be an object");
  DriftSummary drift;
  drift.has_reference = AsBool(value.Find("has_reference"));
  drift.reference_samples = AsU64(value.Find("reference_samples"));
  drift.online_samples = AsU64(value.Find("online_samples"));
  drift.max_psi = AsF64(value.Find("max_psi"));
  drift.features_over_threshold =
      AsU64(value.Find("features_over_threshold"));
  const JsonValue* features = value.Find("features");
  GAUGUR_CHECK_MSG(features != nullptr && features->IsArray(),
                   "drift section missing 'features' array");
  for (const JsonValue& entry : features->AsArray()) {
    PsiEntry psi;
    psi.feature = AsString(entry.Find("feature"));
    psi.psi = AsF64(entry.Find("psi"));
    psi.alert = AsBool(entry.Find("alert"));
    drift.features.push_back(std::move(psi));
  }
  return drift;
}

}  // namespace

std::uint64_t FeatureDigest(std::span<const double> features) {
  // FNV-1a over the IEEE-754 bit patterns.
  std::uint64_t hash = 1469598103934665603ull;
  for (double value : features) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xffull;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

double PopulationStabilityIndex(std::span<const double> reference_probs,
                                std::span<const std::uint64_t> online_counts) {
  GAUGUR_CHECK(reference_probs.size() == online_counts.size());
  std::uint64_t total = 0;
  for (std::uint64_t c : online_counts) total += c;
  if (total == 0) return 0.0;
  // Classic proportion floor keeps empty bins finite.
  constexpr double kFloor = 1e-4;
  double psi = 0.0;
  for (std::size_t i = 0; i < reference_probs.size(); ++i) {
    const double online = std::max(
        kFloor, static_cast<double>(online_counts[i]) /
                    static_cast<double>(total));
    const double reference = std::max(kFloor, reference_probs[i]);
    psi += (online - reference) * std::log(online / reference);
  }
  return psi;
}

std::size_t FeatureReference::Bin(std::size_t f, double value) const {
  const std::vector<double>& feature_edges = edges[f];
  return static_cast<std::size_t>(
      std::upper_bound(feature_edges.begin(), feature_edges.end(), value) -
      feature_edges.begin());
}

JsonValue FeatureReference::ToJson() const {
  JsonObject object;
  object["samples"] = static_cast<unsigned long long>(samples);
  JsonArray features;
  for (std::size_t f = 0; f < names.size(); ++f) {
    JsonObject feature;
    feature["name"] = names[f];
    JsonArray edge_values;
    for (double edge : edges[f]) edge_values.push_back(JsonValue(edge));
    feature["edges"] = JsonValue(std::move(edge_values));
    JsonArray prob_values;
    for (double prob : probs[f]) prob_values.push_back(JsonValue(prob));
    feature["probs"] = JsonValue(std::move(prob_values));
    features.push_back(JsonValue(std::move(feature)));
  }
  object["features"] = JsonValue(std::move(features));
  return JsonValue(std::move(object));
}

FeatureReference FeatureReference::FromJson(const JsonValue& doc) {
  GAUGUR_CHECK_MSG(doc.IsObject(), "feature reference must be an object");
  FeatureReference reference;
  reference.samples = AsU64(doc.Find("samples"));
  const JsonValue* features = doc.Find("features");
  GAUGUR_CHECK_MSG(features != nullptr && features->IsArray(),
                   "feature reference missing 'features' array");
  for (const JsonValue& entry : features->AsArray()) {
    reference.names.push_back(AsString(entry.Find("name")));
    const JsonValue* edge_values = entry.Find("edges");
    const JsonValue* prob_values = entry.Find("probs");
    GAUGUR_CHECK_MSG(edge_values != nullptr && edge_values->IsArray() &&
                         prob_values != nullptr && prob_values->IsArray(),
                     "feature entry missing 'edges'/'probs' arrays");
    std::vector<double> edges;
    for (const JsonValue& edge : edge_values->AsArray()) {
      edges.push_back(edge.AsNumber());
    }
    std::vector<double> probs;
    for (const JsonValue& prob : prob_values->AsArray()) {
      probs.push_back(prob.AsNumber());
    }
    GAUGUR_CHECK_MSG(probs.size() == edges.size() + 1,
                     "feature entry needs edges.size() + 1 probs");
    reference.edges.push_back(std::move(edges));
    reference.probs.push_back(std::move(probs));
  }
  return reference;
}

JsonValue ModelMonitorSummary::ToJson() const {
  JsonObject cm;
  cm["predictions"] = static_cast<unsigned long long>(cm_predictions);
  cm["tp"] = static_cast<unsigned long long>(cm_tp);
  cm["fp"] = static_cast<unsigned long long>(cm_fp);
  cm["tn"] = static_cast<unsigned long long>(cm_tn);
  cm["fn"] = static_cast<unsigned long long>(cm_fn);
  cm["precision"] = cm_precision;
  cm["recall"] = cm_recall;
  cm["fpr"] = cm_fpr;
  cm["accuracy"] = cm_accuracy;
  JsonArray calibration;
  for (const CalibrationBin& bin : cm_calibration) {
    JsonObject entry;
    entry["lo"] = bin.lo;
    entry["hi"] = bin.hi;
    entry["count"] = static_cast<unsigned long long>(bin.count);
    entry["mean_predicted"] = bin.mean_predicted;
    entry["observed_rate"] = bin.observed_rate;
    calibration.push_back(JsonValue(std::move(entry)));
  }
  cm["calibration"] = JsonValue(std::move(calibration));
  cm["drift"] = DriftToJson(cm_drift);

  JsonObject rm;
  rm["predictions"] = static_cast<unsigned long long>(rm_predictions);
  rm["outcomes"] = static_cast<unsigned long long>(rm_outcomes);
  rm["mae_fps"] = rm_mae_fps;
  rm["p95_abs_error_fps"] = rm_p95_abs_error_fps;
  rm["bias_fps"] = rm_bias_fps;
  rm["drift"] = DriftToJson(rm_drift);

  JsonObject stream;
  stream["outcomes_joined"] =
      static_cast<unsigned long long>(outcomes_joined);
  stream["observations_unmatched"] =
      static_cast<unsigned long long>(observations_unmatched);
  stream["evicted_pending"] =
      static_cast<unsigned long long>(evicted_pending);
  stream["window"] = static_cast<unsigned long long>(window);

  JsonObject attribution;
  attribution["cm_false_positive"] =
      static_cast<unsigned long long>(attr_cm_false_positive);
  attribution["rm_overestimate"] =
      static_cast<unsigned long long>(attr_rm_overestimate);
  attribution["capacity_pressure"] =
      static_cast<unsigned long long>(attr_capacity_pressure);
  attribution["qos_violations_observed"] =
      static_cast<unsigned long long>(qos_violations_observed);
  JsonObject by_resource;
  for (const auto& [resource, count] : attr_by_resource) {
    by_resource[resource] = static_cast<unsigned long long>(count);
  }
  attribution["by_resource"] = JsonValue(std::move(by_resource));
  JsonObject offenders;
  for (const auto& [game, count] : attr_offenders) {
    offenders[game] = static_cast<unsigned long long>(count);
  }
  attribution["offenders"] = JsonValue(std::move(offenders));

  JsonObject doc;
  doc["cm"] = JsonValue(std::move(cm));
  doc["rm"] = JsonValue(std::move(rm));
  doc["stream"] = JsonValue(std::move(stream));
  doc["attribution"] = JsonValue(std::move(attribution));
  return JsonValue(std::move(doc));
}

ModelMonitorSummary ModelMonitorSummary::FromJson(const JsonValue& doc) {
  GAUGUR_CHECK_MSG(doc.IsObject(),
                   "model_monitor section must be a JSON object");
  ModelMonitorSummary summary;

  const JsonValue* cm = doc.Find("cm");
  GAUGUR_CHECK_MSG(cm != nullptr && cm->IsObject(),
                   "model_monitor missing 'cm' object");
  summary.cm_predictions = AsU64(cm->Find("predictions"));
  summary.cm_tp = AsU64(cm->Find("tp"));
  summary.cm_fp = AsU64(cm->Find("fp"));
  summary.cm_tn = AsU64(cm->Find("tn"));
  summary.cm_fn = AsU64(cm->Find("fn"));
  summary.cm_precision = AsF64(cm->Find("precision"));
  summary.cm_recall = AsF64(cm->Find("recall"));
  summary.cm_fpr = AsF64(cm->Find("fpr"));
  summary.cm_accuracy = AsF64(cm->Find("accuracy"));
  const JsonValue* calibration = cm->Find("calibration");
  GAUGUR_CHECK_MSG(calibration != nullptr && calibration->IsArray(),
                   "model_monitor 'cm' missing 'calibration' array");
  for (const JsonValue& entry : calibration->AsArray()) {
    CalibrationBin bin;
    bin.lo = AsF64(entry.Find("lo"));
    bin.hi = AsF64(entry.Find("hi"));
    bin.count = AsU64(entry.Find("count"));
    bin.mean_predicted = AsF64(entry.Find("mean_predicted"));
    bin.observed_rate = AsF64(entry.Find("observed_rate"));
    summary.cm_calibration.push_back(bin);
  }
  const JsonValue* cm_drift = cm->Find("drift");
  GAUGUR_CHECK_MSG(cm_drift != nullptr, "model_monitor 'cm' missing 'drift'");
  summary.cm_drift = DriftFromJson(*cm_drift);

  const JsonValue* rm = doc.Find("rm");
  GAUGUR_CHECK_MSG(rm != nullptr && rm->IsObject(),
                   "model_monitor missing 'rm' object");
  summary.rm_predictions = AsU64(rm->Find("predictions"));
  summary.rm_outcomes = AsU64(rm->Find("outcomes"));
  summary.rm_mae_fps = AsF64(rm->Find("mae_fps"));
  summary.rm_p95_abs_error_fps = AsF64(rm->Find("p95_abs_error_fps"));
  summary.rm_bias_fps = AsF64(rm->Find("bias_fps"));
  const JsonValue* rm_drift = rm->Find("drift");
  GAUGUR_CHECK_MSG(rm_drift != nullptr, "model_monitor 'rm' missing 'drift'");
  summary.rm_drift = DriftFromJson(*rm_drift);

  const JsonValue* stream = doc.Find("stream");
  GAUGUR_CHECK_MSG(stream != nullptr && stream->IsObject(),
                   "model_monitor missing 'stream' object");
  summary.outcomes_joined = AsU64(stream->Find("outcomes_joined"));
  summary.observations_unmatched =
      AsU64(stream->Find("observations_unmatched"));
  summary.evicted_pending = AsU64(stream->Find("evicted_pending"));
  summary.window = AsU64(stream->Find("window"));

  const JsonValue* attribution = doc.Find("attribution");
  GAUGUR_CHECK_MSG(attribution != nullptr && attribution->IsObject(),
                   "model_monitor missing 'attribution' object");
  summary.attr_cm_false_positive =
      AsU64(attribution->Find("cm_false_positive"));
  summary.attr_rm_overestimate =
      AsU64(attribution->Find("rm_overestimate"));
  summary.attr_capacity_pressure =
      AsU64(attribution->Find("capacity_pressure"));
  // /v3 forensic fields: optional so /v2 documents keep parsing.
  if (const JsonValue* observed =
          attribution->Find("qos_violations_observed")) {
    summary.qos_violations_observed = AsU64(observed);
  }
  if (const JsonValue* by_resource = attribution->Find("by_resource")) {
    GAUGUR_CHECK_MSG(by_resource->IsObject(),
                     "'by_resource' must be an object");
    for (const auto& [resource, count] : by_resource->AsObject()) {
      summary.attr_by_resource[resource] = AsU64(&count);
    }
  }
  if (const JsonValue* offenders = attribution->Find("offenders")) {
    GAUGUR_CHECK_MSG(offenders->IsObject(), "'offenders' must be an object");
    for (const auto& [game, count] : offenders->AsObject()) {
      summary.attr_offenders[game] = AsU64(&count);
    }
  }
  return summary;
}

void ModelMonitor::DriftState::ResetOnline() {
  counts.assign(reference.NumFeatures(), {});
  for (std::size_t f = 0; f < reference.NumFeatures(); ++f) {
    counts[f].assign(reference.probs[f].size(), 0);
  }
  alerted.assign(reference.NumFeatures(), false);
  samples = 0;
}

ModelMonitor::ModelMonitor(ModelMonitorConfig config) {
  Configure(std::move(config));
}

ModelMonitor& ModelMonitor::Global() {
  static ModelMonitor* monitor = new ModelMonitor();  // thread-exit safe
  return *monitor;
}

void ModelMonitor::Configure(ModelMonitorConfig config) {
  GAUGUR_CHECK(config.ring_capacity >= 1);
  GAUGUR_CHECK(config.window >= 1);
  GAUGUR_CHECK(config.calibration_bins >= 1);
  GAUGUR_CHECK(config.drift_check_interval >= 1);
  std::lock_guard lock(mutex_);
  config_ = std::move(config);
  ring_.assign(config_.ring_capacity, Slot{});
  ring_head_ = 0;
  next_id_ = 0;
  pending_.clear();
  window_.clear();
  cm_tp_ = cm_fp_ = cm_tn_ = cm_fn_ = 0;
  rm_outcomes_ = 0;
  rm_sum_abs_err_ = rm_sum_signed_err_ = 0.0;
  for (DriftState& state : drift_) {
    state.reference = FeatureReference{};
    state.ResetOnline();
  }
  cm_predictions_ = rm_predictions_ = 0;
  outcomes_joined_ = observations_unmatched_ = evicted_pending_ = 0;
  attr_cm_false_positive_ = attr_rm_overestimate_ = 0;
  attr_capacity_pressure_ = 0;
  drift_alert_events_ = 0;
  qos_violations_observed_ = 0;
  attr_by_resource_.clear();
  attr_offenders_.clear();
}

void ModelMonitor::Reset() { Configure(config_); }

void ModelMonitor::SetReference(ModelKind kind, FeatureReference reference) {
  std::lock_guard lock(mutex_);
  DriftState& state = drift_[static_cast<std::size_t>(kind)];
  state.reference = std::move(reference);
  state.ResetOnline();
}

FeatureReference ModelMonitor::Reference(ModelKind kind) const {
  std::lock_guard lock(mutex_);
  return drift_[static_cast<std::size_t>(kind)].reference;
}

bool ModelMonitor::HasData() const {
  std::lock_guard lock(mutex_);
  return cm_predictions_ + rm_predictions_ > 0;
}

void ModelMonitor::RecordPrediction(ModelKind kind, std::uint64_t join_key,
                                    std::span<const double> features,
                                    double predicted, double threshold,
                                    bool decision, double qos_fps) {
  if (!Enabled()) return;
  std::lock_guard lock(mutex_);
  Slot& slot = ring_[ring_head_];
  if (slot.used && slot.pending) EvictLocked(ring_head_);

  slot.used = true;
  slot.pending = true;
  slot.record = PredictionRecord{next_id_++,  kind,     join_key,
                                 FeatureDigest(features), predicted,
                                 threshold,   decision, qos_fps};
  pending_[join_key].push_back(ring_head_);
  ring_head_ = (ring_head_ + 1) % ring_.size();

  if (kind == ModelKind::kCm) {
    ++cm_predictions_;
  } else {
    ++rm_predictions_;
  }
  MonitorMetrics::Get().predictions.Add(1);

  DriftState& state = drift_[static_cast<std::size_t>(kind)];
  if (!state.reference.Empty() &&
      features.size() == state.reference.NumFeatures()) {
    for (std::size_t f = 0; f < features.size(); ++f) {
      ++state.counts[f][state.reference.Bin(f, features[f])];
    }
    ++state.samples;
    if (state.samples % config_.drift_check_interval == 0) {
      EvaluateDriftLocked(state);
    }
  }
}

void ModelMonitor::ObserveOutcome(std::uint64_t join_key,
                                  double realized_fps, double qos_fps,
                                  const OutcomeContext& context) {
  if (!Enabled()) return;
  std::lock_guard lock(mutex_);
  if (qos_fps > 0.0 && realized_fps < qos_fps) {
    ++qos_violations_observed_;
    MonitorMetrics::Get().qos_violations_observed.Add(1);
    if (!context.dominant_resource.empty()) {
      ++attr_by_resource_[context.dominant_resource];
    }
    if (context.offender_game_id >= 0) {
      ++attr_offenders_[std::to_string(context.offender_game_id)];
    }
  }
  const auto it = pending_.find(join_key);
  if (it == pending_.end() || it->second.empty()) {
    ++observations_unmatched_;
    MonitorMetrics::Get().observations_unmatched.Add(1);
    // A violated colocation the models never approved: the fleet is under
    // capacity pressure, not misled by a prediction. Only meaningful once
    // the monitor has seen predictions at all (otherwise every baseline
    // policy's violation would land here).
    if (qos_fps > 0.0 && realized_fps < qos_fps &&
        cm_predictions_ + rm_predictions_ > 0) {
      ++attr_capacity_pressure_;
      MonitorMetrics::Get().attr_capacity_pressure.Add(1);
    }
    return;
  }
  const std::vector<std::size_t> slots = std::move(it->second);
  pending_.erase(it);
  for (std::size_t slot_index : slots) {
    ring_[slot_index].pending = false;
    JoinLocked(slot_index, realized_fps);
  }
  UpdateQualityGaugesLocked();
}

void ModelMonitor::JoinLocked(std::size_t slot_index, double realized_fps) {
  const PredictionRecord& record = ring_[slot_index].record;
  OutcomeRecord outcome;
  outcome.prediction = record;
  outcome.realized_fps = realized_fps;
  outcome.violated = record.qos_fps > 0.0 && realized_fps < record.qos_fps;

  ++outcomes_joined_;
  MonitorMetrics::Get().outcomes_joined.Add(1);

  // QoS-violation attribution: the model said "feasible" and the player
  // still dipped below the floor — a model miss.
  if (outcome.violated && record.decision) {
    if (record.kind == ModelKind::kCm) {
      ++attr_cm_false_positive_;
      MonitorMetrics::Get().attr_cm_false_positive.Add(1);
    } else {
      ++attr_rm_overestimate_;
      MonitorMetrics::Get().attr_rm_overestimate.Add(1);
    }
  }
  if (record.kind == ModelKind::kRm) {
    MonitorMetrics::Get().rm_abs_error_fps.Record(
        std::abs(record.predicted - realized_fps));
  }
  PushOutcomeLocked(std::move(outcome));
}

void ModelMonitor::EvictLocked(std::size_t slot_index) {
  const std::uint64_t key = ring_[slot_index].record.join_key;
  const auto it = pending_.find(key);
  if (it != pending_.end()) {
    auto& slots = it->second;
    slots.erase(std::remove(slots.begin(), slots.end(), slot_index),
                slots.end());
    if (slots.empty()) pending_.erase(it);
  }
  ring_[slot_index].pending = false;
  ++evicted_pending_;
  MonitorMetrics::Get().evicted_pending.Add(1);
}

void ModelMonitor::PushOutcomeLocked(OutcomeRecord outcome) {
  const auto apply = [this](const OutcomeRecord& o, std::int64_t sign) {
    const PredictionRecord& p = o.prediction;
    if (p.kind == ModelKind::kCm && p.qos_fps > 0.0) {
      const bool label = o.realized_fps >= p.qos_fps;
      std::uint64_t& cell = p.decision ? (label ? cm_tp_ : cm_fp_)
                                       : (label ? cm_fn_ : cm_tn_);
      cell += static_cast<std::uint64_t>(sign);
    } else if (p.kind == ModelKind::kRm) {
      rm_outcomes_ += static_cast<std::uint64_t>(sign);
      const double signed_err = p.predicted - o.realized_fps;
      rm_sum_abs_err_ += sign * std::abs(signed_err);
      rm_sum_signed_err_ += sign * signed_err;
    }
  };
  window_.push_back(std::move(outcome));
  apply(window_.back(), +1);
  while (window_.size() > config_.window) {
    apply(window_.front(), -1);
    window_.pop_front();
  }
}

void ModelMonitor::EvaluateDriftLocked(DriftState& state) {
  for (std::size_t f = 0; f < state.reference.NumFeatures(); ++f) {
    const double psi =
        PopulationStabilityIndex(state.reference.probs[f], state.counts[f]);
    const bool above = psi > config_.psi_alert_threshold;
    if (above && !state.alerted[f]) {
      ++drift_alert_events_;
      MonitorMetrics::Get().drift_alerts.Add(1);
    }
    state.alerted[f] = above;
  }
}

DriftSummary ModelMonitor::SummarizeDriftLocked(
    const DriftState& state) const {
  DriftSummary drift;
  drift.has_reference = !state.reference.Empty();
  drift.reference_samples = state.reference.samples;
  drift.online_samples = state.samples;
  for (std::size_t f = 0; f < state.reference.NumFeatures(); ++f) {
    PsiEntry entry;
    entry.feature = state.reference.names[f];
    entry.psi =
        PopulationStabilityIndex(state.reference.probs[f], state.counts[f]);
    entry.alert = entry.psi > config_.psi_alert_threshold;
    drift.max_psi = std::max(drift.max_psi, entry.psi);
    drift.features_over_threshold += entry.alert ? 1 : 0;
    drift.features.push_back(std::move(entry));
  }
  return drift;
}

void ModelMonitor::UpdateQualityGaugesLocked() {
  MonitorMetrics& metrics = MonitorMetrics::Get();
  const auto bp = [](double ratio) {
    return static_cast<std::int64_t>(std::lround(ratio * 10000.0));
  };
  SetGauge(metrics.cm_precision_bp, bp(SafeRatio(cm_tp_, cm_tp_ + cm_fp_)));
  SetGauge(metrics.cm_recall_bp, bp(SafeRatio(cm_tp_, cm_tp_ + cm_fn_)));
  SetGauge(metrics.cm_fpr_bp, bp(SafeRatio(cm_fp_, cm_fp_ + cm_tn_)));
  const double mae = rm_outcomes_ == 0
                         ? 0.0
                         : rm_sum_abs_err_ / static_cast<double>(rm_outcomes_);
  SetGauge(metrics.rm_mae_milli_fps,
           static_cast<std::int64_t>(std::lround(mae * 1000.0)));
}

ModelMonitorSummary ModelMonitor::Summary() const {
  std::lock_guard lock(mutex_);
  ModelMonitorSummary summary;
  summary.cm_predictions = cm_predictions_;
  summary.rm_predictions = rm_predictions_;
  summary.outcomes_joined = outcomes_joined_;
  summary.observations_unmatched = observations_unmatched_;
  summary.evicted_pending = evicted_pending_;
  summary.window = window_.size();

  summary.cm_tp = cm_tp_;
  summary.cm_fp = cm_fp_;
  summary.cm_tn = cm_tn_;
  summary.cm_fn = cm_fn_;
  summary.cm_precision = SafeRatio(cm_tp_, cm_tp_ + cm_fp_);
  summary.cm_recall = SafeRatio(cm_tp_, cm_tp_ + cm_fn_);
  summary.cm_fpr = SafeRatio(cm_fp_, cm_fp_ + cm_tn_);
  summary.cm_accuracy =
      SafeRatio(cm_tp_ + cm_tn_, cm_tp_ + cm_fp_ + cm_tn_ + cm_fn_);

  // Reliability bins over the rolling window.
  const std::size_t bins = config_.calibration_bins;
  std::vector<std::uint64_t> counts(bins, 0), positives(bins, 0);
  std::vector<double> sum_predicted(bins, 0.0);
  std::vector<double> rm_abs_errors;
  for (const OutcomeRecord& outcome : window_) {
    const PredictionRecord& p = outcome.prediction;
    if (p.kind == ModelKind::kCm && p.qos_fps > 0.0) {
      const double prob = std::clamp(p.predicted, 0.0, 1.0);
      const std::size_t bin = std::min(
          bins - 1, static_cast<std::size_t>(prob * static_cast<double>(bins)));
      ++counts[bin];
      sum_predicted[bin] += prob;
      positives[bin] += outcome.realized_fps >= p.qos_fps ? 1 : 0;
    } else if (p.kind == ModelKind::kRm) {
      rm_abs_errors.push_back(std::abs(p.predicted - outcome.realized_fps));
    }
  }
  for (std::size_t b = 0; b < bins; ++b) {
    CalibrationBin bin;
    bin.lo = static_cast<double>(b) / static_cast<double>(bins);
    bin.hi = static_cast<double>(b + 1) / static_cast<double>(bins);
    bin.count = counts[b];
    bin.mean_predicted =
        counts[b] == 0 ? 0.0
                       : sum_predicted[b] / static_cast<double>(counts[b]);
    bin.observed_rate = SafeRatio(positives[b], counts[b]);
    summary.cm_calibration.push_back(bin);
  }

  summary.rm_outcomes = rm_outcomes_;
  summary.rm_mae_fps =
      rm_outcomes_ == 0 ? 0.0
                        : rm_sum_abs_err_ / static_cast<double>(rm_outcomes_);
  summary.rm_bias_fps =
      rm_outcomes_ == 0
          ? 0.0
          : rm_sum_signed_err_ / static_cast<double>(rm_outcomes_);
  if (!rm_abs_errors.empty()) {
    // Nearest-rank p95 over the window.
    std::sort(rm_abs_errors.begin(), rm_abs_errors.end());
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(0.95 * static_cast<double>(rm_abs_errors.size())));
    summary.rm_p95_abs_error_fps = rm_abs_errors[std::max<std::size_t>(
        1, std::min(rank, rm_abs_errors.size())) - 1];
  }

  summary.cm_drift =
      SummarizeDriftLocked(drift_[static_cast<std::size_t>(ModelKind::kCm)]);
  summary.rm_drift =
      SummarizeDriftLocked(drift_[static_cast<std::size_t>(ModelKind::kRm)]);

  summary.attr_cm_false_positive = attr_cm_false_positive_;
  summary.attr_rm_overestimate = attr_rm_overestimate_;
  summary.attr_capacity_pressure = attr_capacity_pressure_;
  summary.qos_violations_observed = qos_violations_observed_;
  summary.attr_by_resource = attr_by_resource_;
  summary.attr_offenders = attr_offenders_;
  return summary;
}

std::vector<PredictionRecord> ModelMonitor::AuditLog() const {
  std::lock_guard lock(mutex_);
  std::vector<PredictionRecord> log;
  log.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Slot& slot = ring_[(ring_head_ + i) % ring_.size()];
    if (slot.used) log.push_back(slot.record);
  }
  std::sort(log.begin(), log.end(),
            [](const PredictionRecord& a, const PredictionRecord& b) {
              return a.id < b.id;
            });
  return log;
}

std::vector<OutcomeRecord> ModelMonitor::RecentOutcomes() const {
  std::lock_guard lock(mutex_);
  return {window_.begin(), window_.end()};
}

}  // namespace gaugur::obs
