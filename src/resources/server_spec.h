// Server hardware description. Mirrors the paper's testbed shape (one CPU,
// one GPU, fixed memory) without modeling any specific silicon: capacities
// are normalized so that occupancy/pressure values live in [0, 1] per
// resource, and memory is a hard capacity constraint.
#pragma once

#include "resources/resource.h"

namespace gaugur::resources {

struct ServerSpec {
  /// Normalized contention capacity per shared resource. 1.0 everywhere by
  /// convention; kept explicit so heterogeneous-server experiments can scale
  /// individual dimensions.
  PerResource<double> capacity{};

  /// CPU RAM and GPU VRAM in normalized units (game demands are expressed
  /// as fractions of the default server's memory).
  double cpu_memory = 1.0;
  double gpu_memory = 1.0;

  /// Maximum number of concurrently hosted game sessions. The paper finds
  /// colocations beyond 4 games impractical on its testbed.
  int max_sessions = 4;

  static ServerSpec Default() {
    ServerSpec spec;
    for (auto& c : spec.capacity) c = 1.0;
    return spec;
  }
};

}  // namespace gaugur::resources
