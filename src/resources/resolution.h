// Display resolutions. The paper's resolution study (§3.3) found FPS and
// GPU-side intensity to be linear in the number of pixels (Eq. 2,
// Observations 6-8); all resolution math in the repo goes through NumPixels.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"

namespace gaugur::resources {

struct Resolution {
  int width = 1920;
  int height = 1080;

  constexpr double NumPixels() const {
    return static_cast<double>(width) * static_cast<double>(height);
  }

  /// Pixels in millions; convenient unit for the linear models.
  constexpr double Megapixels() const { return NumPixels() / 1e6; }

  std::string ToString() const {
    return std::to_string(width) + "x" + std::to_string(height);
  }

  friend constexpr bool operator==(const Resolution&,
                                   const Resolution&) = default;
};

inline constexpr Resolution k720p{1280, 720};
inline constexpr Resolution k900p{1600, 900};
inline constexpr Resolution k1080p{1920, 1080};
inline constexpr Resolution k1440p{2560, 1440};

/// The resolutions players may pick in our experiments (the paper lets each
/// game run at a randomly selected resolution).
inline constexpr Resolution kPlayerResolutions[] = {k720p, k900p, k1080p,
                                                    k1440p};
inline constexpr int kNumPlayerResolutions = 4;

/// Reference resolution used for profiling (sensitivity curves are
/// resolution-invariant per Observation 6, so one profile suffices).
inline constexpr Resolution kReferenceResolution = k1080p;

/// A linear-in-pixels model y = intercept + slope * megapixels, used for
/// Eq. 2 (solo FPS vs resolution) and Observation 8 (intensity vs
/// resolution). Fit from two profiled resolutions.
struct PixelLinearModel {
  double intercept = 0.0;
  double slope = 0.0;

  double Eval(const Resolution& res) const {
    return intercept + slope * res.Megapixels();
  }

  /// Interpolating fit through two (resolution, value) observations.
  static PixelLinearModel FromTwoPoints(const Resolution& r1, double y1,
                                        const Resolution& r2, double y2) {
    GAUGUR_CHECK_MSG(r1.NumPixels() != r2.NumPixels(),
                     "need two distinct resolutions");
    PixelLinearModel m;
    m.slope = (y2 - y1) / (r2.Megapixels() - r1.Megapixels());
    m.intercept = y1 - m.slope * r1.Megapixels();
    return m;
  }
};

}  // namespace gaugur::resources
