// The seven shared resources GAugur models (paper §3.2): CPU cores, last
// level cache, memory bandwidth, GPU cores, GPU memory bandwidth, GPU L2
// cache, and PCIe bandwidth. Memories (CPU/GPU RAM capacity) are tracked
// only as a feasibility constraint, not as a contention dimension, per the
// paper's observation that they do not affect frame rate while total demand
// fits in the server.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace gaugur::resources {

enum class Resource : int {
  kCpuCore = 0,  // CPU-CE: compute-engine (core) time
  kLlc,          // LLC: last-level cache capacity
  kMemBw,        // MEM-BW: DRAM bandwidth
  kGpuCore,      // GPU-CE: GPU compute engines (SMs)
  kGpuBw,        // GPU-BW: GPU memory bandwidth
  kGpuL2,        // GPU-L2: GPU L2 cache capacity
  kPcieBw,       // PCIe-BW: host<->device transfer bandwidth
};

inline constexpr std::size_t kNumResources = 7;

inline constexpr std::array<Resource, kNumResources> kAllResources = {
    Resource::kCpuCore, Resource::kLlc,   Resource::kMemBw, Resource::kGpuCore,
    Resource::kGpuBw,   Resource::kGpuL2, Resource::kPcieBw};

constexpr std::size_t Index(Resource r) { return static_cast<std::size_t>(r); }

constexpr std::string_view Name(Resource r) {
  switch (r) {
    case Resource::kCpuCore: return "CPU-CE";
    case Resource::kLlc:     return "LLC";
    case Resource::kMemBw:   return "MEM-BW";
    case Resource::kGpuCore: return "GPU-CE";
    case Resource::kGpuBw:   return "GPU-BW";
    case Resource::kGpuL2:   return "GPU-L2";
    case Resource::kPcieBw:  return "PCIe-BW";
  }
  return "?";
}

/// True for the resources that feed the CPU stage of the frame loop.
constexpr bool IsCpuSide(Resource r) {
  return r == Resource::kCpuCore || r == Resource::kLlc ||
         r == Resource::kMemBw;
}

/// True for the resources that feed the GPU stage of the frame loop.
/// PCIe feeds the transfer stage and is neither pure CPU nor pure GPU.
constexpr bool IsGpuSide(Resource r) {
  return r == Resource::kGpuCore || r == Resource::kGpuBw ||
         r == Resource::kGpuL2;
}

/// Cache-capacity resources: characterized by occupancy, not utilization.
/// The paper's VBP baseline excludes these from its demand vectors.
constexpr bool IsCacheCapacity(Resource r) {
  return r == Resource::kLlc || r == Resource::kGpuL2;
}

/// Resources whose intensity scales with rendered pixel count
/// (Observation 8); the CPU-side ones do not (Observation 7).
constexpr bool ScalesWithPixels(Resource r) {
  return r == Resource::kGpuCore || r == Resource::kGpuBw ||
         r == Resource::kGpuL2 || r == Resource::kPcieBw;
}

/// Fixed-size per-resource value bundle with named indexing.
template <typename T>
struct PerResource {
  std::array<T, kNumResources> values{};

  T& operator[](Resource r) { return values[Index(r)]; }
  const T& operator[](Resource r) const { return values[Index(r)]; }
  T& operator[](std::size_t i) { return values[i]; }
  const T& operator[](std::size_t i) const { return values[i]; }

  auto begin() { return values.begin(); }
  auto end() { return values.end(); }
  auto begin() const { return values.begin(); }
  auto end() const { return values.end(); }
  static constexpr std::size_t size() { return kNumResources; }
};

}  // namespace gaugur::resources
