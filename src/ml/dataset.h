// Dense row-major dataset for the from-scratch learners.
//
// Targets are always doubles; classifiers interpret them as binary labels
// (0.0 / 1.0). Feature names are optional and carried along for the
// model-inspection utilities and serialization.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace gaugur::ml {

/// Borrowed view of a dense row-major matrix (`rows` x `cols` doubles).
/// The batch-prediction entry points take this instead of a Dataset so
/// callers that assemble feature rows into their own buffers (the GAugur
/// predictor, the schedulers) can run inference without copying into a
/// Dataset first. The viewed storage must outlive the view.
struct MatrixView {
  const double* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  std::span<const double> Row(std::size_t i) const {
    GAUGUR_CHECK(i < rows);
    return {data + i * cols, cols};
  }
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t num_features,
                   std::vector<std::string> feature_names = {});

  std::size_t NumRows() const { return y_.size(); }
  std::size_t NumFeatures() const { return num_features_; }
  bool Empty() const { return y_.empty(); }

  void Add(std::span<const double> x, double y);

  std::span<const double> Row(std::size_t i) const {
    GAUGUR_CHECK(i < NumRows());
    return {x_.data() + i * num_features_, num_features_};
  }
  double Target(std::size_t i) const {
    GAUGUR_CHECK(i < NumRows());
    return y_[i];
  }
  std::span<const double> Targets() const { return y_; }

  /// View of the full row-major feature block.
  MatrixView Matrix() const { return {x_.data(), NumRows(), num_features_}; }

  const std::vector<std::string>& FeatureNames() const {
    return feature_names_;
  }

  /// Rows selected by `indices`, in order (repeats allowed — used for
  /// bootstrap resampling).
  Dataset Subset(std::span<const std::size_t> indices) const;

  /// First `n` rows.
  Dataset Head(std::size_t n) const;

  /// Appends every row of `other` (must agree on feature count).
  void Append(const Dataset& other);

 private:
  std::size_t num_features_ = 0;
  std::vector<double> x_;  // row-major, NumRows() * num_features_
  std::vector<double> y_;
  std::vector<std::string> feature_names_;
};

/// Deterministic train/test row split: shuffles [0, n) with `seed` and
/// cuts at `train_fraction`.
struct TrainTestSplit {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};
TrainTestSplit MakeSplit(std::size_t num_rows, double train_fraction,
                         std::uint64_t seed);

}  // namespace gaugur::ml
