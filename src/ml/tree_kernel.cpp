#include "ml/tree_kernel.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "ml/decision_tree.h"

namespace gaugur::ml {

void FlatForest::Add(const TreeModel& tree) {
  GAUGUR_CHECK_MSG(tree.IsFitted(), "FlatForest::Add on an unfitted tree");
  const auto& nodes = tree.Nodes();
  const auto base = static_cast<std::int32_t>(nodes_.size());
  nodes_.resize(nodes_.size() + nodes.size());
  value_.resize(value_.size() + nodes.size());

  // Breadth-first renumbering that places each split's children in
  // adjacent slots, so a descent step is `child + (x > threshold)` with
  // no branch and no second child pointer.
  std::vector<std::int32_t> slot(nodes.size(), 0);
  std::vector<std::int32_t> order;  // original indices in BFS order
  order.reserve(nodes.size());
  order.push_back(0);
  slot[0] = base;
  std::int32_t next = base + 1;
  for (std::size_t q = 0; q < order.size(); ++q) {
    const TreeNode& node = nodes[static_cast<std::size_t>(order[q])];
    const std::int32_t self = slot[static_cast<std::size_t>(order[q])];
    if (node.feature < 0) {
      // Leaf self-loop: stepping adds (x[0] > +inf) == 0 forever.
      nodes_[static_cast<std::size_t>(self)] = {
          std::numeric_limits<double>::infinity(), 0, self};
      value_[static_cast<std::size_t>(self)] = node.value;
    } else {
      slot[static_cast<std::size_t>(node.left)] = next;
      slot[static_cast<std::size_t>(node.right)] = next + 1;
      nodes_[static_cast<std::size_t>(self)] = {node.threshold,
                                                node.feature, next};
      next += 2;
      order.push_back(node.left);
      order.push_back(node.right);
      max_feature_ =
          std::max(max_feature_, static_cast<std::size_t>(node.feature));
    }
  }
  roots_.push_back(base);
  // Depth() counts levels including the root; descents are one fewer.
  levels_.push_back(tree.Depth() - 1);
}

void FlatForest::Clear() {
  nodes_.clear();
  value_.clear();
  roots_.clear();
  levels_.clear();
  max_feature_ = 0;
}

void FlatForest::CheckWidth(std::size_t cols) const {
  GAUGUR_CHECK_MSG(!Empty(), "Predict before Fit");
  GAUGUR_CHECK_MSG(cols > max_feature_,
                   "row width " << cols << " <= max split feature "
                                << max_feature_);
}

double FlatForest::PredictTree(std::size_t t,
                               std::span<const double> x) const {
  CheckWidth(x.size());
  std::int32_t idx = roots_[t];
  const std::int32_t levels = levels_[t];
  for (std::int32_t d = 0; d < levels; ++d) {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    idx = n.child + static_cast<std::int32_t>(
                        x[static_cast<std::size_t>(n.feature)] > n.threshold);
  }
  return value_[static_cast<std::size_t>(idx)];
}

double FlatForest::PredictRowSum(std::span<const double> x) const {
  CheckWidth(x.size());
  double sum = 0.0;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    sum += PredictTree(t, x);
  }
  return sum;
}

void FlatForest::AccumulateTreeBatch(std::size_t t, MatrixView x,
                                     std::span<double> out,
                                     double scale) const {
  CheckWidth(x.cols);
  GAUGUR_CHECK(out.size() == x.rows);
  const std::int32_t root = roots_[t];
  const std::int32_t levels = levels_[t];
  const std::size_t cols = x.cols;
  const double* data = x.data;
  const Node* nodes = nodes_.data();
  const double* value = value_.data();

  // Four independent descents in flight per iteration: the self-looping
  // leaves let every lane take the same fixed level count, and the
  // child-adjacent layout keeps each step a compare-and-add with no
  // data-dependent branch to mispredict.
  std::size_t i = 0;
  for (; i + 4 <= x.rows; i += 4) {
    const double* r0 = data + i * cols;
    const double* r1 = r0 + cols;
    const double* r2 = r1 + cols;
    const double* r3 = r2 + cols;
    std::int32_t n0 = root, n1 = root, n2 = root, n3 = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const Node a = nodes[n0];
      const Node b = nodes[n1];
      const Node c = nodes[n2];
      const Node e = nodes[n3];
      n0 = a.child + static_cast<std::int32_t>(r0[a.feature] > a.threshold);
      n1 = b.child + static_cast<std::int32_t>(r1[b.feature] > b.threshold);
      n2 = c.child + static_cast<std::int32_t>(r2[c.feature] > c.threshold);
      n3 = e.child + static_cast<std::int32_t>(r3[e.feature] > e.threshold);
    }
    out[i] += scale * value[n0];
    out[i + 1] += scale * value[n1];
    out[i + 2] += scale * value[n2];
    out[i + 3] += scale * value[n3];
  }
  for (; i < x.rows; ++i) {
    const double* row = data + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const Node& n = nodes[idx];
      idx = n.child +
            static_cast<std::int32_t>(row[n.feature] > n.threshold);
    }
    out[i] += scale * value[idx];
  }
}

void FlatForest::AccumulateBatch(MatrixView x, std::span<double> out,
                                 double scale) const {
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    AccumulateTreeBatch(t, x, out, scale);
  }
}

}  // namespace gaugur::ml
