#include "ml/tree_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/check.h"
#include "ml/decision_tree.h"
#include "ml/tree_kernel_simd.h"

namespace gaugur::ml {

namespace {

/// Portable block descent: four independent descents in flight per
/// iteration. The fixed per-tree level count (leaf chains pad every
/// path) lets every lane take the same step count, and the
/// child-adjacent layout keeps each step a compare-and-add with no
/// data-dependent branch to mispredict. This is the semantic reference
/// the SSE/AVX2 kernels must match bit for bit.
void AccumulateTreeScalar(const FlatNode* nodes, const double* value,
                          std::int32_t root, std::int32_t levels,
                          const double* data, std::size_t rows,
                          std::size_t cols, double* out, double scale) {
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* r0 = data + i * cols;
    const double* r1 = r0 + cols;
    const double* r2 = r1 + cols;
    const double* r3 = r2 + cols;
    std::int32_t n0 = root, n1 = root, n2 = root, n3 = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const FlatNode a = nodes[n0];
      const FlatNode b = nodes[n1];
      const FlatNode c = nodes[n2];
      const FlatNode e = nodes[n3];
      n0 = a.child + static_cast<std::int32_t>(r0[a.feature] > a.threshold);
      n1 = b.child + static_cast<std::int32_t>(r1[b.feature] > b.threshold);
      n2 = c.child + static_cast<std::int32_t>(r2[c.feature] > c.threshold);
      n3 = e.child + static_cast<std::int32_t>(r3[e.feature] > e.threshold);
    }
    out[i] += scale * value[n0];
    out[i + 1] += scale * value[n1];
    out[i + 2] += scale * value[n2];
    out[i + 3] += scale * value[n3];
  }
  for (; i < rows; ++i) {
    const double* row = data + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const FlatNode& n = nodes[idx];
      idx = n.child +
            static_cast<std::int32_t>(row[n.feature] > n.threshold);
    }
    out[i] += scale * value[idx];
  }
}

/// Strongest tier the running CPU can execute, within what this build
/// compiled in.
SimdTier DetectCpuTier() {
#if defined(GAUGUR_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdTier::kSse;
#endif
  return SimdTier::kScalar;
}

/// -1 = automatic dispatch, else the int value of the forced SimdTier.
std::atomic<int> g_forced_tier{-1};

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse:
      return "sse";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdTier SimdTierFromString(const char* value, SimdTier fallback) {
  if (value == nullptr) return fallback;
  const std::string v(value);
  if (v == "off" || v == "scalar") return SimdTier::kScalar;
  if (v == "sse") return SimdTier::kSse;
  if (v == "avx2") return SimdTier::kAvx2;
  return fallback;
}

SimdTier FlatForest::SupportedTier() {
  static const SimdTier tier = DetectCpuTier();
  return tier;
}

SimdTier FlatForest::ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTier>(forced);
  static const SimdTier detected = std::min(
      SupportedTier(),
      SimdTierFromString(std::getenv("GAUGUR_SIMD"), SimdTier::kAvx2));
  return detected;
}

void FlatForest::ForceTier(std::optional<SimdTier> tier) {
  if (!tier.has_value()) {
    g_forced_tier.store(-1, std::memory_order_relaxed);
    return;
  }
  GAUGUR_CHECK_MSG(*tier <= SupportedTier(),
                   "ForceTier(" << SimdTierName(*tier)
                                << ") beyond supported tier "
                                << SimdTierName(SupportedTier()));
  g_forced_tier.store(static_cast<int>(*tier), std::memory_order_relaxed);
}

void FlatForest::Add(const TreeModel& tree) {
  GAUGUR_CHECK_MSG(tree.IsFitted(), "FlatForest::Add on an unfitted tree");
  const auto& nodes = tree.Nodes();
  const auto base = static_cast<std::int32_t>(nodes_.size());
  // Depth() counts levels including the root; descents are one fewer.
  const std::int32_t levels = tree.Depth() - 1;
  roots_.push_back(base);
  levels_.push_back(levels);
  level_index_.push_back(static_cast<std::int32_t>(level_base_.size()));

  // Level-by-level renumbering: every node of descent depth d —
  // including copies of leaves that ended shallower — occupies one
  // contiguous segment, children of a split land adjacent in the next
  // segment, and a leaf at depth k < levels is chained downward (one
  // copy per deeper level, threshold +inf so the step adds 0). Every
  // descent is exactly `levels` steps and step d of a row block reads
  // only level d's segment.
  std::vector<std::int32_t> cur{0};  // original node ids at this level
  std::vector<std::int32_t> next;
  std::int32_t cur_base = base;
  for (std::int32_t d = 0; d <= levels; ++d) {
    level_base_.push_back(cur_base);
    const std::int32_t next_base =
        cur_base + static_cast<std::int32_t>(cur.size());
    nodes_.resize(static_cast<std::size_t>(next_base));
    value_.resize(static_cast<std::size_t>(next_base));
    next.clear();
    for (std::size_t q = 0; q < cur.size(); ++q) {
      const TreeNode& node = nodes[static_cast<std::size_t>(cur[q])];
      const auto self =
          static_cast<std::size_t>(cur_base + static_cast<std::int32_t>(q));
      if (node.feature < 0) {
        // Leaf: self-loop at the last level, chain one level down
        // otherwise. Copies carry the leaf value too, so any level's
        // record is self-describing.
        const std::int32_t child =
            d == levels
                ? static_cast<std::int32_t>(self)
                : next_base + static_cast<std::int32_t>(next.size());
        nodes_[self] = {std::numeric_limits<double>::infinity(), 0, child};
        value_[self] = node.value;
        if (d < levels) next.push_back(cur[q]);
      } else {
        GAUGUR_CHECK_MSG(d < levels, "split below the tree's depth");
        const std::int32_t child =
            next_base + static_cast<std::int32_t>(next.size());
        nodes_[self] = {node.threshold, node.feature, child};
        next.push_back(node.left);
        next.push_back(node.right);
        max_feature_ =
            std::max(max_feature_, static_cast<std::size_t>(node.feature));
      }
    }
    cur.swap(next);
    cur_base = next_base;
  }
}

void FlatForest::Clear() {
  nodes_.clear();
  value_.clear();
  roots_.clear();
  levels_.clear();
  level_base_.clear();
  level_index_.clear();
  max_feature_ = 0;
}

std::int32_t FlatForest::NumLevels(std::size_t t) const {
  GAUGUR_CHECK(t < roots_.size());
  return levels_[t] + 1;
}

std::pair<std::int32_t, std::int32_t> FlatForest::LevelSpan(
    std::size_t t, std::int32_t d) const {
  GAUGUR_CHECK(t < roots_.size());
  GAUGUR_CHECK(d >= 0 && d <= levels_[t]);
  const auto first = static_cast<std::size_t>(level_index_[t] + d);
  const std::int32_t begin = level_base_[first];
  // Segments are laid out consecutively (across trees too), so the next
  // recorded base is this segment's end.
  const std::int32_t end = first + 1 < level_base_.size()
                               ? level_base_[first + 1]
                               : static_cast<std::int32_t>(nodes_.size());
  return {begin, end};
}

void FlatForest::CheckWidth(std::size_t cols) const {
  GAUGUR_CHECK_MSG(!Empty(), "Predict before Fit");
  GAUGUR_CHECK_MSG(cols > max_feature_,
                   "row width " << cols << " <= max split feature "
                                << max_feature_);
}

double FlatForest::PredictTree(std::size_t t,
                               std::span<const double> x) const {
  CheckWidth(x.size());
  std::int32_t idx = roots_[t];
  const std::int32_t levels = levels_[t];
  for (std::int32_t d = 0; d < levels; ++d) {
    const FlatNode& n = nodes_[static_cast<std::size_t>(idx)];
    idx = n.child + static_cast<std::int32_t>(
                        x[static_cast<std::size_t>(n.feature)] > n.threshold);
  }
  return value_[static_cast<std::size_t>(idx)];
}

double FlatForest::PredictRowSum(std::span<const double> x) const {
  CheckWidth(x.size());
  double sum = 0.0;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    sum += PredictTree(t, x);
  }
  return sum;
}

void FlatForest::AccumulateTreeBatch(std::size_t t, MatrixView x,
                                     std::span<double> out,
                                     double scale) const {
  AccumulateTreeBatchTier(t, x, out, scale, ActiveTier());
}

void FlatForest::AccumulateTreeBatchTier(std::size_t t, MatrixView x,
                                         std::span<double> out, double scale,
                                         SimdTier tier) const {
  CheckWidth(x.cols);
  GAUGUR_CHECK(out.size() == x.rows);
  const std::int32_t root = roots_[t];
  const std::int32_t levels = levels_[t];
  const FlatNode* nodes = nodes_.data();
  const double* value = value_.data();
  switch (tier) {
#if defined(GAUGUR_SIMD_X86)
    case SimdTier::kAvx2:
      detail::AccumulateTreeAvx2(nodes, value, root, levels, x.data, x.rows,
                                 x.cols, out.data(), scale);
      return;
    case SimdTier::kSse:
      detail::AccumulateTreeSse(nodes, value, root, levels, x.data, x.rows,
                                x.cols, out.data(), scale);
      return;
#endif
    default:
      break;
  }
  AccumulateTreeScalar(nodes, value, root, levels, x.data, x.rows, x.cols,
                       out.data(), scale);
}

void FlatForest::AccumulateBatch(MatrixView x, std::span<double> out,
                                 double scale) const {
  // Resolve the tier once per batch: a concurrent ForceTier flip then
  // switches kernels between trees at worst, never mid-tree.
  const SimdTier tier = ActiveTier();
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    AccumulateTreeBatchTier(t, x, out, scale, tier);
  }
}

}  // namespace gaugur::ml
