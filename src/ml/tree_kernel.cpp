#include "ml/tree_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/thread_pool.h"
#include "ml/decision_tree.h"
#include "ml/tree_kernel_simd.h"

namespace gaugur::ml {

namespace {

/// Portable block descent: four independent descents in flight per
/// iteration. The fixed per-tree level count (leaf chains pad every
/// path) lets every lane take the same step count, and the
/// child-adjacent layout keeps each step a compare-and-add with no
/// data-dependent branch to mispredict. This is the semantic reference
/// the SSE/AVX2 kernels must match bit for bit.
void AccumulateTreeScalar(const FlatNode* nodes, const double* value,
                          std::int32_t root, std::int32_t levels,
                          const double* data, std::size_t rows,
                          std::size_t cols, double* out, double scale) {
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const double* r0 = data + i * cols;
    const double* r1 = r0 + cols;
    const double* r2 = r1 + cols;
    const double* r3 = r2 + cols;
    std::int32_t n0 = root, n1 = root, n2 = root, n3 = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const FlatNode a = nodes[n0];
      const FlatNode b = nodes[n1];
      const FlatNode c = nodes[n2];
      const FlatNode e = nodes[n3];
      n0 = a.child + static_cast<std::int32_t>(r0[a.feature] > a.threshold);
      n1 = b.child + static_cast<std::int32_t>(r1[b.feature] > b.threshold);
      n2 = c.child + static_cast<std::int32_t>(r2[c.feature] > c.threshold);
      n3 = e.child + static_cast<std::int32_t>(r3[e.feature] > e.threshold);
    }
    out[i] += scale * value[n0];
    out[i + 1] += scale * value[n1];
    out[i + 2] += scale * value[n2];
    out[i + 3] += scale * value[n3];
  }
  for (; i < rows; ++i) {
    const double* row = data + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const FlatNode& n = nodes[idx];
      idx = n.child +
            static_cast<std::int32_t>(row[n.feature] > n.threshold);
    }
    out[i] += scale * value[idx];
  }
}

/// Strongest tier the running CPU can execute, within what this build
/// compiled in.
SimdTier DetectCpuTier() {
#if defined(GAUGUR_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdTier::kSse;
#endif
  return SimdTier::kScalar;
}

/// -1 = automatic dispatch, else the int value of the forced SimdTier.
std::atomic<int> g_forced_tier{-1};

/// -1 = env-driven, 0 = forced off, 1 = forced on.
std::atomic<int> g_forced_quant{-1};
std::atomic<int> g_forced_parallel{-1};

/// Threshold rank marking a leaf/always-left record in a qmeta word. No
/// bin id reaches it (FinalizeQuantized caps edges per feature at
/// kLeafRank - 1), so `bin > kLeafRank` is always false and the record
/// adds 0 to the index — exactly like its +inf float threshold.
constexpr std::uint32_t kLeafRank = 0xFFFFu;

/// Quantized counterpart of AccumulateTreeScalar over pre-binned rows:
/// the same four-chain unroll, with each step's float compare replaced
/// by the integer `bin > rank` (exact by construction — the bin edges
/// are the split thresholds themselves). This is the semantic reference
/// the AVX2 quantized kernel must match bit for bit, and the kernel
/// every sub-AVX2 tier runs (SSE4.2 has no gathers, so a dedicated SSE
/// quantized kernel would re-implement this loop lane by lane for no
/// win — measured on the float side, scalar-style compares beat
/// element-inserted vectors below 4-wide gathers).
void AccumulateTreeQuantScalar(const std::int32_t* meta,
                               const std::int32_t* child, const double* value,
                               std::int32_t root, std::int32_t levels,
                               const std::uint16_t* bins, std::size_t rows,
                               std::size_t cols, double* out, double scale) {
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const std::uint16_t* r0 = bins + i * cols;
    const std::uint16_t* r1 = r0 + cols;
    const std::uint16_t* r2 = r1 + cols;
    const std::uint16_t* r3 = r2 + cols;
    std::int32_t n0 = root, n1 = root, n2 = root, n3 = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const auto a = static_cast<std::uint32_t>(meta[n0]);
      const auto b = static_cast<std::uint32_t>(meta[n1]);
      const auto c = static_cast<std::uint32_t>(meta[n2]);
      const auto e = static_cast<std::uint32_t>(meta[n3]);
      n0 = child[n0] +
           static_cast<std::int32_t>(r0[a >> 16] > (a & 0xFFFFu));
      n1 = child[n1] +
           static_cast<std::int32_t>(r1[b >> 16] > (b & 0xFFFFu));
      n2 = child[n2] +
           static_cast<std::int32_t>(r2[c >> 16] > (c & 0xFFFFu));
      n3 = child[n3] +
           static_cast<std::int32_t>(r3[e >> 16] > (e & 0xFFFFu));
    }
    out[i] += scale * value[n0];
    out[i + 1] += scale * value[n1];
    out[i + 2] += scale * value[n2];
    out[i + 3] += scale * value[n3];
  }
  for (; i < rows; ++i) {
    const std::uint16_t* row = bins + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const auto m = static_cast<std::uint32_t>(meta[idx]);
      idx = child[idx] +
            static_cast<std::int32_t>(row[m >> 16] > (m & 0xFFFFu));
    }
    out[i] += scale * value[idx];
  }
}

/// The AVX2 quantized kernel computes bin offsets in 32-bit lanes; any
/// batch whose flat element count overflows them (absurd for this
/// repo's row widths) just runs the scalar quantized kernel instead.
bool FitsInt32(std::size_t rows, std::size_t cols) {
  return rows <= static_cast<std::size_t>(
                     std::numeric_limits<std::int32_t>::max()) /
                     (cols == 0 ? 1 : cols);
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse:
      return "sse";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdTier SimdTierFromString(const char* value, SimdTier fallback) {
  if (value == nullptr) return fallback;
  const std::string v(value);
  if (v == "off" || v == "scalar") return SimdTier::kScalar;
  if (v == "sse") return SimdTier::kSse;
  if (v == "avx2") return SimdTier::kAvx2;
  return fallback;
}

SimdTier FlatForest::SupportedTier() {
  static const SimdTier tier = DetectCpuTier();
  return tier;
}

SimdTier FlatForest::ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTier>(forced);
  static const SimdTier detected = std::min(
      SupportedTier(),
      SimdTierFromString(std::getenv("GAUGUR_SIMD"), SimdTier::kAvx2));
  return detected;
}

void FlatForest::ForceTier(std::optional<SimdTier> tier) {
  if (!tier.has_value()) {
    g_forced_tier.store(-1, std::memory_order_relaxed);
    return;
  }
  GAUGUR_CHECK_MSG(*tier <= SupportedTier(),
                   "ForceTier(" << SimdTierName(*tier)
                                << ") beyond supported tier "
                                << SimdTierName(SupportedTier()));
  g_forced_tier.store(static_cast<int>(*tier), std::memory_order_relaxed);
}

void FlatForest::Add(const TreeModel& tree) {
  GAUGUR_CHECK_MSG(tree.IsFitted(), "FlatForest::Add on an unfitted tree");
  // Any structural change invalidates the quantized tables (the GBDT
  // fit adds a tree per stage and re-finalizes once after the last).
  quant_built_ = false;
  edges_.clear();
  edge_flat_.clear();
  edge_off_.clear();
  qmeta_.clear();
  qchild_.clear();
  const auto& nodes = tree.Nodes();
  const auto base = static_cast<std::int32_t>(nodes_.size());
  // Depth() counts levels including the root; descents are one fewer.
  const std::int32_t levels = tree.Depth() - 1;
  roots_.push_back(base);
  levels_.push_back(levels);
  level_index_.push_back(static_cast<std::int32_t>(level_base_.size()));

  // Level-by-level renumbering: every node of descent depth d —
  // including copies of leaves that ended shallower — occupies one
  // contiguous segment, children of a split land adjacent in the next
  // segment, and a leaf at depth k < levels is chained downward (one
  // copy per deeper level, threshold +inf so the step adds 0). Every
  // descent is exactly `levels` steps and step d of a row block reads
  // only level d's segment.
  std::vector<std::int32_t> cur{0};  // original node ids at this level
  std::vector<std::int32_t> next;
  std::int32_t cur_base = base;
  for (std::int32_t d = 0; d <= levels; ++d) {
    level_base_.push_back(cur_base);
    const std::int32_t next_base =
        cur_base + static_cast<std::int32_t>(cur.size());
    nodes_.resize(static_cast<std::size_t>(next_base));
    value_.resize(static_cast<std::size_t>(next_base));
    next.clear();
    for (std::size_t q = 0; q < cur.size(); ++q) {
      const TreeNode& node = nodes[static_cast<std::size_t>(cur[q])];
      const auto self =
          static_cast<std::size_t>(cur_base + static_cast<std::int32_t>(q));
      if (node.feature < 0) {
        // Leaf: self-loop at the last level, chain one level down
        // otherwise. Copies carry the leaf value too, so any level's
        // record is self-describing.
        const std::int32_t child =
            d == levels
                ? static_cast<std::int32_t>(self)
                : next_base + static_cast<std::int32_t>(next.size());
        nodes_[self] = {std::numeric_limits<double>::infinity(), 0, child};
        value_[self] = node.value;
        if (d < levels) next.push_back(cur[q]);
      } else {
        GAUGUR_CHECK_MSG(d < levels, "split below the tree's depth");
        const std::int32_t child =
            next_base + static_cast<std::int32_t>(next.size());
        nodes_[self] = {node.threshold, node.feature, child};
        next.push_back(node.left);
        next.push_back(node.right);
        max_feature_ =
            std::max(max_feature_, static_cast<std::size_t>(node.feature));
      }
    }
    cur.swap(next);
    cur_base = next_base;
  }
}

void FlatForest::Clear() {
  nodes_.clear();
  value_.clear();
  roots_.clear();
  levels_.clear();
  level_base_.clear();
  level_index_.clear();
  max_feature_ = 0;
  edges_.clear();
  edge_flat_.clear();
  edge_off_.clear();
  qmeta_.clear();
  qchild_.clear();
  quant_built_ = false;
}

std::int32_t FlatForest::NumLevels(std::size_t t) const {
  GAUGUR_CHECK(t < roots_.size());
  return levels_[t] + 1;
}

std::pair<std::int32_t, std::int32_t> FlatForest::LevelSpan(
    std::size_t t, std::int32_t d) const {
  GAUGUR_CHECK(t < roots_.size());
  GAUGUR_CHECK(d >= 0 && d <= levels_[t]);
  const auto first = static_cast<std::size_t>(level_index_[t] + d);
  const std::int32_t begin = level_base_[first];
  // Segments are laid out consecutively (across trees too), so the next
  // recorded base is this segment's end.
  const std::int32_t end = first + 1 < level_base_.size()
                               ? level_base_[first + 1]
                               : static_cast<std::int32_t>(nodes_.size());
  return {begin, end};
}

void FlatForest::CheckWidth(std::size_t cols) const {
  GAUGUR_CHECK_MSG(!Empty(), "Predict before Fit");
  GAUGUR_CHECK_MSG(cols > max_feature_,
                   "row width " << cols << " <= max split feature "
                                << max_feature_);
}

double FlatForest::PredictTree(std::size_t t,
                               std::span<const double> x) const {
  CheckWidth(x.size());
  std::int32_t idx = roots_[t];
  const std::int32_t levels = levels_[t];
  for (std::int32_t d = 0; d < levels; ++d) {
    const FlatNode& n = nodes_[static_cast<std::size_t>(idx)];
    idx = n.child + static_cast<std::int32_t>(
                        x[static_cast<std::size_t>(n.feature)] > n.threshold);
  }
  return value_[static_cast<std::size_t>(idx)];
}

double FlatForest::PredictRowSum(std::span<const double> x) const {
  CheckWidth(x.size());
  double sum = 0.0;
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    sum += PredictTree(t, x);
  }
  return sum;
}

void FlatForest::AccumulateTreeBatch(std::size_t t, MatrixView x,
                                     std::span<double> out,
                                     double scale) const {
  AccumulateTreeBatchTier(t, x, out, scale, ActiveTier());
}

void FlatForest::AccumulateTreeBatchTier(std::size_t t, MatrixView x,
                                         std::span<double> out, double scale,
                                         SimdTier tier) const {
  CheckWidth(x.cols);
  GAUGUR_CHECK(out.size() == x.rows);
  const std::int32_t root = roots_[t];
  const std::int32_t levels = levels_[t];
  const FlatNode* nodes = nodes_.data();
  const double* value = value_.data();
  switch (tier) {
#if defined(GAUGUR_SIMD_X86)
    case SimdTier::kAvx2:
      detail::AccumulateTreeAvx2(nodes, value, root, levels, x.data, x.rows,
                                 x.cols, out.data(), scale);
      return;
    case SimdTier::kSse:
      detail::AccumulateTreeSse(nodes, value, root, levels, x.data, x.rows,
                                x.cols, out.data(), scale);
      return;
#endif
    default:
      break;
  }
  AccumulateTreeScalar(nodes, value, root, levels, x.data, x.rows, x.cols,
                       out.data(), scale);
}

void FlatForest::AccumulateBatch(MatrixView x, std::span<double> out,
                                 double scale) const {
  // Multi-core fan-out pays for itself only when there is enough work
  // to amortize the submit/staging round trip; below the cutoffs (or
  // from a pool worker — a shard's decision batch must stay on its
  // pinned worker) the sequential path wins and is what runs.
  if (ParallelActive() && x.rows >= 256 && roots_.size() >= 16) {
    common::ThreadPool& pool = common::ThreadPool::Global();
    if (pool.NumThreads() >= 2 && !pool.CurrentThreadInPool()) {
      AccumulateBatchMt(x, out, scale, pool);
      return;
    }
  }
  // Resolve tier and quantized dispatch once per batch: a concurrent
  // ForceTier/ForceQuantized flip then switches kernels between trees
  // at worst, never mid-tree — and both paths are bit-identical anyway.
  const SimdTier tier = ActiveTier();
  // Rows outer, trees inner: a tree-outer sweep re-streams the whole
  // matrix (and bin matrix) through the cache once PER TREE — for a
  // fleet-sized batch that is gigabytes of re-read traffic and every
  // descent gather pays L3 latency. A row block small enough to stay
  // cache-resident across all trees turns those gathers into L1/L2
  // hits. Bit-identical to the tree-outer order: each row still
  // accumulates its trees in index order, one rounding per step.
  constexpr std::size_t kBatchRowBlock = 512;
  if (UsesQuantized()) {
    // Reused per thread: predictor decision batches call this at high
    // rate and the bin buffer would otherwise churn the allocator.
    static thread_local std::vector<std::uint16_t> bins;
    BinBatch(x, bins);
    for (std::size_t rb = 0; rb < x.rows; rb += kBatchRowBlock) {
      const std::size_t brows = std::min(kBatchRowBlock, x.rows - rb);
      for (std::size_t t = 0; t < roots_.size(); ++t) {
        AccumulateTreeQuantTier(t, bins.data() + rb * x.cols, brows, x.cols,
                                out.subspan(rb, brows), scale, tier);
      }
    }
    return;
  }
  for (std::size_t rb = 0; rb < x.rows; rb += kBatchRowBlock) {
    const std::size_t brows = std::min(kBatchRowBlock, x.rows - rb);
    const MatrixView bx{x.data + rb * x.cols, brows, x.cols};
    for (std::size_t t = 0; t < roots_.size(); ++t) {
      AccumulateTreeBatchTier(t, bx, out.subspan(rb, brows), scale, tier);
    }
  }
}

void FlatForest::AccumulateBatchMt(MatrixView x, std::span<double> out,
                                   double scale,
                                   common::ThreadPool& pool) const {
  CheckWidth(x.cols);
  GAUGUR_CHECK(out.size() == x.rows);
  const SimdTier tier = ActiveTier();
  const bool quant = UsesQuantized();
  const std::size_t trees = roots_.size();
  const std::size_t workers = pool.NumThreads();

  static thread_local std::vector<std::uint16_t> bins;
  if (quant) BinBatch(x, bins);

  if (workers < 2 || pool.CurrentThreadInPool() || x.rows == 0) {
    // Same rows-outer blocking as AccumulateBatch (cache residency
    // across the tree sweep), same bit-identical accumulation order.
    constexpr std::size_t kSeqRowBlock = 512;
    for (std::size_t rb = 0; rb < x.rows; rb += kSeqRowBlock) {
      const std::size_t brows = std::min(kSeqRowBlock, x.rows - rb);
      for (std::size_t t = 0; t < trees; ++t) {
        if (quant) {
          AccumulateTreeQuantTier(t, bins.data() + rb * x.cols, brows,
                                  x.cols, out.subspan(rb, brows), scale,
                                  tier);
        } else {
          const MatrixView bx{x.data + rb * x.cols, brows, x.cols};
          AccumulateTreeBatchTier(t, bx, out.subspan(rb, brows), scale,
                                  tier);
        }
      }
    }
    return;
  }

  // Row blocks bound the staging slab (trees * block rows) so a large
  // fleet batch never allocates trees * rows doubles at once.
  constexpr std::size_t kMtRowBlock = 1024;
  const std::size_t nshards = std::min(workers, trees);
  std::vector<double> scratch;
  std::vector<std::future<void>> futs;
  futs.reserve(nshards);
  for (std::size_t rb = 0; rb < x.rows; rb += kMtRowBlock) {
    const std::size_t brows = std::min(kMtRowBlock, x.rows - rb);
    const MatrixView bx{x.data + rb * x.cols, brows, x.cols};
    const std::uint16_t* bbins = quant ? bins.data() + rb * x.cols : nullptr;
    // Stage per-tree products: scratch[t * brows + i] = scale * leaf.
    // The slab starts zeroed and the kernels compute `out += scale *
    // leaf` over it; 0.0 + p == p exactly, so the staged value IS the
    // product with its single multiply rounding.
    scratch.assign(trees * brows, 0.0);
    double* const sbase = scratch.data();
    futs.clear();
    for (std::size_t w = 0; w < nshards; ++w) {
      const std::size_t tb = trees * w / nshards;
      const std::size_t te = trees * (w + 1) / nshards;
      futs.push_back(pool.SubmitPinned(w, [=, this] {
        for (std::size_t t = tb; t < te; ++t) {
          std::span<double> slab(sbase + t * brows, brows);
          if (quant) {
            AccumulateTreeQuantTier(t, bbins, brows, bx.cols, slab, scale,
                                    tier);
          } else {
            AccumulateTreeBatchTier(t, bx, slab, scale, tier);
          }
        }
      }));
    }
    std::exception_ptr err;
    for (auto& f : futs) {
      try {
        f.get();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    // Deterministic reduction: each row adds its tree products in tree
    // order — exactly the addition sequence of the sequential loop, so
    // the result is bit-identical for every worker count.
    for (std::size_t i = 0; i < brows; ++i) {
      double acc = out[rb + i];
      for (std::size_t t = 0; t < trees; ++t) {
        acc += sbase[t * brows + i];
      }
      out[rb + i] = acc;
    }
  }
}

// --- Quantized descent ---------------------------------------------

void FlatForest::FinalizeQuantized() {
#if defined(GAUGUR_NO_QUANT)
  return;
#else
  if (quant_built_ || Empty()) return;
  if (max_feature_ >= (1u << 16)) return;  // feature must fit 16 bits

  // Bin edges are the distinct split thresholds themselves — the whole
  // exactness argument. bin(x) counts edges strictly below x, so for a
  // threshold of rank k: x > e_k  ⟺  at least k+1 edges lie below x
  //  ⟺  bin(x) > k. +inf leaf records (and any pathological non-finite
  // threshold, whose float compare is constant-false too) skip the edge
  // list and take the always-left kLeafRank instead.
  std::vector<std::vector<double>> edges(max_feature_ + 1);
  const double inf = std::numeric_limits<double>::infinity();
  for (const FlatNode& n : nodes_) {
    if (n.threshold < inf) {
      edges[static_cast<std::size_t>(n.feature)].push_back(n.threshold);
    }
  }
  for (auto& e : edges) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    // Bin ids must stay strictly below the leaf rank or a real compare
    // could alias the always-left sentinel.
    if (e.size() >= kLeafRank) return;
  }

  // Eight trailing pad words per array keep the AVX2 kernel's whole-
  // register loads of a small level segment (the vpermd fast path for
  // levels of <= 16 nodes) inside the allocation; the permute selector
  // never picks a pad lane.
  std::vector<std::int32_t> qmeta(nodes_.size() + 8, 0);
  std::vector<std::int32_t> qchild(nodes_.size() + 8, 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const FlatNode& n = nodes_[i];
    std::uint32_t rank = kLeafRank;
    if (n.threshold < inf) {
      const auto& e = edges[static_cast<std::size_t>(n.feature)];
      rank = static_cast<std::uint32_t>(
          std::lower_bound(e.begin(), e.end(), n.threshold) - e.begin());
    }
    qmeta[i] = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(n.feature) << 16) | rank);
    qchild[i] = n.child;
  }
  // Flatten the edge lists into one slab for BinBatch: slice f is
  // edge_flat_[edge_off_[f] .. edge_off_[f + 1]).
  edge_off_.assign(edges.size() + 1, 0);
  for (std::size_t f = 0; f < edges.size(); ++f) {
    edge_off_[f + 1] =
        edge_off_[f] + static_cast<std::uint32_t>(edges[f].size());
  }
  edge_flat_.clear();
  edge_flat_.reserve(edge_off_.back());
  for (const auto& e : edges) {
    edge_flat_.insert(edge_flat_.end(), e.begin(), e.end());
  }
  edges_ = std::move(edges);
  qmeta_ = std::move(qmeta);
  qchild_ = std::move(qchild);
  quant_built_ = true;
#endif
}

bool FlatForest::QuantizedSupported() {
#if defined(GAUGUR_NO_QUANT)
  return false;
#else
  return true;
#endif
}

bool FlatForest::QuantizedActive() {
  if (!QuantizedSupported()) return false;
  const int forced = g_forced_quant.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool enabled = [] {
    const char* v = std::getenv("GAUGUR_QUANT");
    if (v == nullptr) return true;
    const std::string s(v);
    return !(s == "off" || s == "0" || s == "false");
  }();
  return enabled;
}

void FlatForest::ForceQuantized(std::optional<bool> on) {
  if (!on.has_value()) {
    g_forced_quant.store(-1, std::memory_order_relaxed);
    return;
  }
  GAUGUR_CHECK_MSG(!*on || QuantizedSupported(),
                   "ForceQuantized(true) in a GAUGUR_NO_QUANT build");
  g_forced_quant.store(*on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t FlatForest::NumBinEdges(std::size_t f) const {
  GAUGUR_CHECK_MSG(quant_built_, "bin query before FinalizeQuantized");
  return f < edges_.size() ? edges_[f].size() : 0;
}

std::uint16_t FlatForest::BinValue(std::size_t f, double x) const {
  GAUGUR_CHECK_MSG(quant_built_, "bin query before FinalizeQuantized");
  if (f >= edges_.size() || std::isnan(x)) return 0;
  const auto& e = edges_[f];
  return static_cast<std::uint16_t>(
      std::lower_bound(e.begin(), e.end(), x) - e.begin());
}

namespace {

// Branchless lower_bound: the number of edges strictly below x, i.e.
// std::lower_bound(e, e + n, x) - e for a sorted edge slice with
// n >= 1. The `?:` steps compile to cmov, which matters here because
// fitted thresholds sit right in the thick of the data — every branchy
// probe would be a coin flip for the predictor. NaN compares false
// against every edge and falls out as bin 0 (descends left), matching
// BinValue without an isnan test in the hot loop.
inline std::uint16_t CountEdgesBelow(const double* e, std::size_t n,
                                     double x) {
  std::size_t base = 0;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len >> 1;
    base += e[base + half - 1] < x ? half : 0;
    len -= half;
  }
  base += e[base] < x ? 1 : 0;
  return static_cast<std::uint16_t>(base);
}

}  // namespace

void FlatForest::BinBatch(MatrixView x,
                          std::vector<std::uint16_t>& bins) const {
  GAUGUR_CHECK_MSG(quant_built_, "BinBatch before FinalizeQuantized");
  CheckWidth(x.cols);
  // Two trailing pad elements keep the AVX2 kernel's 4-byte bin gather
  // of the last element inside the allocation.
  bins.resize(x.rows * x.cols + 2);
  const std::size_t nf = edges_.size();
  // Tiled column sweep: within a tile of rows, bin one feature at a
  // time so its edge slice stays hot in L1 for the whole inner loop
  // (a row sweep rotates through every per-feature slice each row);
  // the tile bound keeps the matrix slice being strided L2-resident.
  constexpr std::size_t kBinTile = 256;
  for (std::size_t rb = 0; rb < x.rows; rb += kBinTile) {
    const std::size_t rend = std::min(x.rows, rb + kBinTile);
    for (std::size_t f = 0; f < x.cols; ++f) {
      std::uint16_t* b = bins.data() + rb * x.cols + f;
      const std::size_t n =
          f < nf ? edge_off_[f + 1] - edge_off_[f] : std::size_t{0};
      if (n == 0) {
        // Feature never split on: every value (NaN included) is bin 0.
        for (std::size_t i = rb; i < rend; ++i, b += x.cols) *b = 0;
        continue;
      }
      const double* e = edge_flat_.data() + edge_off_[f];
      const double* v = x.data + rb * x.cols + f;
      const std::size_t s = x.cols;
      // Four interleaved searches: each probe chain is serial on an L1
      // load, so independent rows in flight are what buy throughput.
      std::size_t i = rb;
      for (; i + 4 <= rend; i += 4, b += 4 * s, v += 4 * s) {
        const double x0 = v[0], x1 = v[s], x2 = v[2 * s], x3 = v[3 * s];
        std::size_t b0 = 0, b1 = 0, b2 = 0, b3 = 0;
        std::size_t len = n;
        while (len > 1) {
          const std::size_t half = len >> 1;
          b0 += e[b0 + half - 1] < x0 ? half : 0;
          b1 += e[b1 + half - 1] < x1 ? half : 0;
          b2 += e[b2 + half - 1] < x2 ? half : 0;
          b3 += e[b3 + half - 1] < x3 ? half : 0;
          len -= half;
        }
        b[0] = static_cast<std::uint16_t>(b0 + (e[b0] < x0 ? 1 : 0));
        b[s] = static_cast<std::uint16_t>(b1 + (e[b1] < x1 ? 1 : 0));
        b[2 * s] = static_cast<std::uint16_t>(b2 + (e[b2] < x2 ? 1 : 0));
        b[3 * s] = static_cast<std::uint16_t>(b3 + (e[b3] < x3 ? 1 : 0));
      }
      for (; i < rend; ++i, b += s, v += s) {
        *b = CountEdgesBelow(e, n, *v);
      }
    }
  }
}

void FlatForest::AccumulateTreeQuantTier(std::size_t t,
                                         const std::uint16_t* bins,
                                         std::size_t rows, std::size_t cols,
                                         std::span<double> out, double scale,
                                         SimdTier tier) const {
  GAUGUR_CHECK_MSG(quant_built_,
                   "quantized descent before FinalizeQuantized");
  GAUGUR_CHECK(out.size() == rows);
  const std::int32_t root = roots_[t];
  const std::int32_t levels = levels_[t];
#if defined(GAUGUR_SIMD_X86)
  if (tier >= SimdTier::kAvx2 && FitsInt32(rows, cols)) {
    detail::AccumulateTreeQuantAvx2(qmeta_.data(), qchild_.data(),
                                    value_.data(), root, levels, bins, rows,
                                    cols, out.data(), scale);
    return;
  }
#endif
  AccumulateTreeQuantScalar(qmeta_.data(), qchild_.data(), value_.data(),
                            root, levels, bins, rows, cols, out.data(),
                            scale);
}

// --- Multi-core dispatch -------------------------------------------

bool FlatForest::ParallelActive() {
  const int forced = g_forced_parallel.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool enabled = [] {
    const char* v = std::getenv("GAUGUR_KERNEL_THREADS");
    if (v == nullptr) return true;
    const std::string s(v);
    return !(s == "1" || s == "0" || s == "off");
  }();
  return enabled;
}

void FlatForest::ForceParallel(std::optional<bool> on) {
  if (!on.has_value()) {
    g_forced_parallel.store(-1, std::memory_order_relaxed);
    return;
  }
  g_forced_parallel.store(*on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace gaugur::ml
