// Random forests (Breiman 2001): bootstrap-bagged CART trees with per-node
// random feature subsampling. Tree fitting is embarrassingly parallel and
// runs on the shared ThreadPool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"
#include "ml/tree_kernel.h"

namespace gaugur::ml {

struct ForestConfig {
  int num_trees = 200;
  int max_depth = 14;
  std::size_t min_samples_leaf = 2;
  /// Features per split; <= 0 selects sqrt(d) for classification and d/3
  /// for regression at fit time (the classic defaults).
  int max_features = 0;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 11;
  /// Fit trees in parallel on the global ThreadPool.
  bool parallel_fit = true;
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestConfig config = {})
      : config_(config) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  using Regressor::PredictBatch;
  void PredictBatch(MatrixView x, std::span<double> out) const override;
  std::string Name() const override { return "RF"; }

  const std::vector<TreeModel>& Trees() const { return trees_; }
  const ForestConfig& Config() const { return config_; }

  /// The flattened (and quantization-finalized) inference kernel;
  /// read-only hook for benches and kernel-level tests.
  const FlatForest& Kernel() const { return flat_; }

  /// Reconstructs a fitted forest (serialization).
  static RandomForestRegressor FromTrees(ForestConfig config,
                                         std::vector<TreeModel> trees) {
    RandomForestRegressor forest(config);
    forest.trees_ = std::move(trees);
    forest.RebuildKernel();
    return forest;
  }

 private:
  void RebuildKernel();

  ForestConfig config_;
  std::vector<TreeModel> trees_;
  FlatForest flat_;
};

class RandomForestClassifier final : public Classifier {
 public:
  explicit RandomForestClassifier(ForestConfig config = {})
      : config_(config) {}

  void Fit(const Dataset& data) override;
  /// Mean of the trees' leaf positive-fractions (soft voting).
  double PredictProb(std::span<const double> x) const override;
  using Classifier::PredictProbBatch;
  void PredictProbBatch(MatrixView x, std::span<double> out) const override;
  std::string Name() const override { return "RF"; }

  const std::vector<TreeModel>& Trees() const { return trees_; }
  const ForestConfig& Config() const { return config_; }

  /// The flattened (and quantization-finalized) inference kernel;
  /// read-only hook for benches and kernel-level tests.
  const FlatForest& Kernel() const { return flat_; }

  /// Reconstructs a fitted forest (serialization).
  static RandomForestClassifier FromTrees(ForestConfig config,
                                          std::vector<TreeModel> trees) {
    RandomForestClassifier forest(config);
    forest.trees_ = std::move(trees);
    forest.RebuildKernel();
    return forest;
  }

 private:
  void RebuildKernel();

  ForestConfig config_;
  std::vector<TreeModel> trees_;
  FlatForest flat_;
};

}  // namespace gaugur::ml
