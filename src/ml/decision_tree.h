// CART decision trees (Breiman et al.): binary splits chosen by exhaustive
// scan over sorted feature values, minimizing MSE (regression) or Gini
// impurity (binary classification).
//
// One core tree (TreeModel) backs four consumers:
//  * DecisionTreeRegressor / DecisionTreeClassifier — the paper's DTR/DTC;
//  * RandomForest* — bagged trees with per-node feature subsampling;
//  * Gradient boosting — shallow regression trees fit to residuals, with a
//    caller-supplied leaf-value functional for Newton updates.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"
#include "ml/tree_kernel.h"

namespace gaugur::ml {

enum class SplitCriterion { kMse, kGini };

struct TreeConfig {
  SplitCriterion criterion = SplitCriterion::kMse;
  int max_depth = 12;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Number of features considered per split; <= 0 means all features.
  int max_features = -1;
  std::uint64_t seed = 7;
};

struct TreeNode {
  int feature = -1;  // -1 marks a leaf
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;  // leaf prediction
  std::size_t num_samples = 0;
};

/// Recomputes a leaf's value from the training rows that landed in it;
/// used by gradient boosting for Newton leaf updates.
using LeafValueFn =
    std::function<double(std::span<const std::size_t> row_indices)>;

class TreeModel {
 public:
  explicit TreeModel(TreeConfig config = {}) : config_(config) {}

  /// Fits on the rows of `data` listed in `rows` against `targets`
  /// (indexed by absolute row id, so callers can pass residual vectors).
  /// `leaf_value` overrides the default leaf mean when provided.
  void Fit(const Dataset& data, std::span<const std::size_t> rows,
           std::span<const double> targets,
           const LeafValueFn& leaf_value = nullptr);

  /// Convenience: fit on all rows against the dataset's own targets.
  void Fit(const Dataset& data);

  double Predict(std::span<const double> x) const;

  const std::vector<TreeNode>& Nodes() const { return nodes_; }
  bool IsFitted() const { return !nodes_.empty(); }

  /// Reconstructs a fitted tree from its node array (serialization).
  static TreeModel FromNodes(TreeConfig config, std::vector<TreeNode> nodes) {
    TreeModel tree(config);
    tree.nodes_ = std::move(nodes);
    return tree;
  }
  int Depth() const;
  std::size_t NumLeaves() const;

  const TreeConfig& Config() const { return config_; }

 private:
  TreeConfig config_;
  std::vector<TreeNode> nodes_;
};

/// The paper's DTR. Inference runs on the flattened kernel; tree_ stays
/// the canonical (trainable, serializable) form.
class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = MakeDefaultConfig())
      : tree_(config) {}

  void Fit(const Dataset& data) override {
    tree_.Fit(data);
    RebuildKernel();
  }
  double Predict(std::span<const double> x) const override {
    return flat_.PredictTree(0, x);
  }
  using Regressor::PredictBatch;
  void PredictBatch(MatrixView x, std::span<double> out) const override {
    GAUGUR_CHECK(out.size() == x.rows);
    for (std::size_t i = 0; i < x.rows; ++i) {
      out[i] = flat_.PredictTree(0, x.Row(i));
    }
  }
  std::string Name() const override { return "DTR"; }
  const TreeModel& Tree() const { return tree_; }

  /// Wraps an already-fitted tree (serialization).
  static DecisionTreeRegressor FromTree(TreeModel tree) {
    DecisionTreeRegressor model(tree.Config());
    model.tree_ = std::move(tree);
    model.RebuildKernel();
    return model;
  }

  static TreeConfig MakeDefaultConfig() {
    TreeConfig c;
    c.criterion = SplitCriterion::kMse;
    c.max_depth = 10;
    c.min_samples_leaf = 3;
    return c;
  }

 private:
  void RebuildKernel() {
    flat_.Clear();
    flat_.Add(tree_);
  }

  TreeModel tree_;
  FlatForest flat_;
};

/// The paper's DTC. Leaf values are positive-class fractions, so the tree
/// doubles as a probability estimator.
class DecisionTreeClassifier final : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeConfig config = MakeDefaultConfig())
      : tree_(config) {}

  void Fit(const Dataset& data) override {
    tree_.Fit(data);
    RebuildKernel();
  }
  double PredictProb(std::span<const double> x) const override {
    return flat_.PredictTree(0, x);
  }
  using Classifier::PredictProbBatch;
  void PredictProbBatch(MatrixView x, std::span<double> out) const override {
    GAUGUR_CHECK(out.size() == x.rows);
    for (std::size_t i = 0; i < x.rows; ++i) {
      out[i] = flat_.PredictTree(0, x.Row(i));
    }
  }
  std::string Name() const override { return "DTC"; }
  const TreeModel& Tree() const { return tree_; }

  /// Wraps an already-fitted tree (serialization).
  static DecisionTreeClassifier FromTree(TreeModel tree) {
    DecisionTreeClassifier model(tree.Config());
    model.tree_ = std::move(tree);
    model.RebuildKernel();
    return model;
  }

  static TreeConfig MakeDefaultConfig() {
    TreeConfig c;
    c.criterion = SplitCriterion::kGini;
    c.max_depth = 10;
    c.min_samples_leaf = 3;
    return c;
  }

 private:
  void RebuildKernel() {
    flat_.Clear();
    flat_.Add(tree_);
  }

  TreeModel tree_;
  FlatForest flat_;
};

}  // namespace gaugur::ml
