// Abstract learner interfaces. Every algorithm in this library (trees,
// forests, boosted ensembles, SVMs) implements one or both of these, which
// is what lets the GAugur model wrappers and the benches sweep algorithms
// uniformly (Figures 7a, 8a, 8b).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace gaugur::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void Fit(const Dataset& data) = 0;
  virtual double Predict(std::span<const double> x) const = 0;
  virtual std::string Name() const = 0;

  std::vector<double> PredictBatch(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.NumRows());
    for (std::size_t i = 0; i < data.NumRows(); ++i) {
      out.push_back(Predict(data.Row(i)));
    }
    return out;
  }
};

/// Binary classifier over labels {0, 1} encoded as target doubles.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void Fit(const Dataset& data) = 0;
  /// Probability of the positive class.
  virtual double PredictProb(std::span<const double> x) const = 0;
  virtual std::string Name() const = 0;

  int Predict(std::span<const double> x) const {
    return PredictProb(x) >= 0.5 ? 1 : 0;
  }

  std::vector<int> PredictBatch(const Dataset& data) const {
    std::vector<int> out;
    out.reserve(data.NumRows());
    for (std::size_t i = 0; i < data.NumRows(); ++i) {
      out.push_back(Predict(data.Row(i)));
    }
    return out;
  }
};

}  // namespace gaugur::ml
