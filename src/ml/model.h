// Abstract learner interfaces. Every algorithm in this library (trees,
// forests, boosted ensembles, SVMs) implements one or both of these, which
// is what lets the GAugur model wrappers and the benches sweep algorithms
// uniformly (Figures 7a, 8a, 8b).
//
// Batch prediction is part of the interface: PredictBatch /
// PredictProbBatch over a row-major MatrixView are virtual, so tree-based
// learners can run their flattened-node kernels (ml/tree_kernel.h) over
// the whole batch instead of a per-row virtual call. The default
// implementation is the scalar loop, and every override must stay
// bit-identical to it (tests/ml/batch_equivalence_test.cpp enforces this
// across the factory).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace gaugur::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void Fit(const Dataset& data) = 0;
  virtual double Predict(std::span<const double> x) const = 0;
  virtual std::string Name() const = 0;

  /// Predicts every row of `x` into `out` (out.size() == x.rows).
  virtual void PredictBatch(MatrixView x, std::span<double> out) const {
    GAUGUR_CHECK(out.size() == x.rows);
    for (std::size_t i = 0; i < x.rows; ++i) {
      out[i] = Predict(x.Row(i));
    }
  }

  std::vector<double> PredictBatch(const Dataset& data) const {
    std::vector<double> out(data.NumRows());
    PredictBatch(data.Matrix(), out);
    return out;
  }
};

/// Binary classifier over labels {0, 1} encoded as target doubles.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void Fit(const Dataset& data) = 0;
  /// Probability of the positive class.
  virtual double PredictProb(std::span<const double> x) const = 0;
  virtual std::string Name() const = 0;

  /// Positive-class probability for every row of `x` (out.size() ==
  /// x.rows).
  virtual void PredictProbBatch(MatrixView x, std::span<double> out) const {
    GAUGUR_CHECK(out.size() == x.rows);
    for (std::size_t i = 0; i < x.rows; ++i) {
      out[i] = PredictProb(x.Row(i));
    }
  }

  std::vector<double> PredictProbBatch(const Dataset& data) const {
    std::vector<double> out(data.NumRows());
    PredictProbBatch(data.Matrix(), out);
    return out;
  }

  /// Thresholded verdict. The default 0.5 is the max-accuracy rule;
  /// deployments pass their own operating point (e.g.
  /// core::PredictorConfig::cm_decision_threshold).
  int Predict(std::span<const double> x, double threshold = 0.5) const {
    return PredictProb(x) >= threshold ? 1 : 0;
  }

  std::vector<int> PredictBatch(const Dataset& data,
                                double threshold = 0.5) const {
    const std::vector<double> probs = PredictProbBatch(data);
    std::vector<int> out(probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      out[i] = probs[i] >= threshold ? 1 : 0;
    }
    return out;
  }
};

}  // namespace gaugur::ml
