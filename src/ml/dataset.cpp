#include "ml/dataset.h"

#include "common/rng.h"

namespace gaugur::ml {

Dataset::Dataset(std::size_t num_features,
                 std::vector<std::string> feature_names)
    : num_features_(num_features), feature_names_(std::move(feature_names)) {
  GAUGUR_CHECK(num_features_ > 0);
  GAUGUR_CHECK(feature_names_.empty() ||
               feature_names_.size() == num_features_);
}

void Dataset::Add(std::span<const double> x, double y) {
  GAUGUR_CHECK_MSG(x.size() == num_features_,
                   "row has " << x.size() << " features, dataset expects "
                              << num_features_);
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(y);
}

Dataset Dataset::Subset(std::span<const std::size_t> indices) const {
  Dataset out(num_features_, feature_names_);
  out.x_.reserve(indices.size() * num_features_);
  out.y_.reserve(indices.size());
  for (std::size_t i : indices) out.Add(Row(i), Target(i));
  return out;
}

Dataset Dataset::Head(std::size_t n) const {
  GAUGUR_CHECK(n <= NumRows());
  Dataset out(num_features_, feature_names_);
  out.x_.assign(x_.begin(),
                x_.begin() + static_cast<std::ptrdiff_t>(n * num_features_));
  out.y_.assign(y_.begin(), y_.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

void Dataset::Append(const Dataset& other) {
  GAUGUR_CHECK(other.num_features_ == num_features_);
  x_.insert(x_.end(), other.x_.begin(), other.x_.end());
  y_.insert(y_.end(), other.y_.begin(), other.y_.end());
}

TrainTestSplit MakeSplit(std::size_t num_rows, double train_fraction,
                         std::uint64_t seed) {
  GAUGUR_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<std::size_t> idx(num_rows);
  for (std::size_t i = 0; i < num_rows; ++i) idx[i] = i;
  common::Rng rng(seed);
  rng.Shuffle(idx);
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(num_rows));
  TrainTestSplit split;
  split.train_indices.assign(idx.begin(),
                             idx.begin() + static_cast<std::ptrdiff_t>(cut));
  split.test_indices.assign(idx.begin() + static_cast<std::ptrdiff_t>(cut),
                            idx.end());
  return split;
}

}  // namespace gaugur::ml
