#include "ml/serialize.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace gaugur::ml {

namespace {

void WriteHeader(std::ostream& os) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
}

/// Reads the next non-empty line and CHECKs its first token.
std::istringstream ExpectLine(std::istream& is, const std::string& expected) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string token;
    ls >> token;
    GAUGUR_CHECK_MSG(token == expected,
                     "expected '" << expected << "', got '" << token << "'");
    return ls;
  }
  GAUGUR_CHECK_MSG(false, "unexpected end of stream, wanted " << expected);
}

void SaveTreeConfig(std::ostream& os, const TreeConfig& config) {
  os << "tree_config " << static_cast<int>(config.criterion) << ' '
     << config.max_depth << ' ' << config.min_samples_leaf << ' '
     << config.min_samples_split << ' ' << config.max_features << '\n';
}

TreeConfig LoadTreeConfig(std::istream& is) {
  auto ls = ExpectLine(is, "tree_config");
  TreeConfig config;
  int criterion = 0;
  ls >> criterion >> config.max_depth >> config.min_samples_leaf >>
      config.min_samples_split >> config.max_features;
  config.criterion = static_cast<SplitCriterion>(criterion);
  return config;
}

void SaveVector(std::ostream& os, const char* key,
                const std::vector<double>& values) {
  os << key << ' ' << values.size();
  for (double v : values) os << ' ' << v;
  os << '\n';
}

std::vector<double> LoadVector(std::istream& is, const char* key) {
  auto ls = ExpectLine(is, key);
  std::size_t n = 0;
  ls >> n;
  std::vector<double> values(n);
  for (auto& v : values) ls >> v;
  return values;
}

void SaveForestConfig(std::ostream& os, const ForestConfig& config) {
  os << "forest_config " << config.num_trees << ' ' << config.max_depth
     << ' ' << config.min_samples_leaf << ' ' << config.max_features << ' '
     << config.bootstrap_fraction << '\n';
}

ForestConfig LoadForestConfig(std::istream& is) {
  auto ls = ExpectLine(is, "forest_config");
  ForestConfig config;
  ls >> config.num_trees >> config.max_depth >> config.min_samples_leaf >>
      config.max_features >> config.bootstrap_fraction;
  return config;
}

void SaveBoostConfig(std::ostream& os, const BoostConfig& config) {
  os << "boost_config " << config.num_stages << ' ' << config.learning_rate
     << ' ' << config.max_depth << ' ' << config.min_samples_leaf << ' '
     << config.subsample << '\n';
}

BoostConfig LoadBoostConfig(std::istream& is) {
  auto ls = ExpectLine(is, "boost_config");
  BoostConfig config;
  ls >> config.num_stages >> config.learning_rate >> config.max_depth >>
      config.min_samples_leaf >> config.subsample;
  return config;
}

void SaveSvmConfig(std::ostream& os, const SvmConfig& config) {
  os << "svm_config " << static_cast<int>(config.kernel) << ' ' << config.c
     << ' ' << config.gamma << ' ' << config.epsilon << ' '
     << config.max_epochs << ' ' << config.tolerance << '\n';
}

SvmConfig LoadSvmConfig(std::istream& is) {
  auto ls = ExpectLine(is, "svm_config");
  SvmConfig config;
  int kernel = 0;
  ls >> kernel >> config.c >> config.gamma >> config.epsilon >>
      config.max_epochs >> config.tolerance;
  config.kernel = static_cast<KernelKind>(kernel);
  return config;
}

template <typename Machine>
void SaveKernelMachine(std::ostream& os, const Machine& svm) {
  SaveSvmConfig(os, svm.Config());
  SaveScaler(os, svm.Scaler());
  os << "gamma " << svm.EffectiveGamma() << '\n';
  os << "num_features " << svm.NumFeatures() << '\n';
  SaveVector(os, "support_vectors", svm.SupportVectorData());
  SaveVector(os, "coefficients", svm.Coefficients());
}

template <typename Machine>
Machine LoadKernelMachine(std::istream& is) {
  const SvmConfig config = LoadSvmConfig(is);
  StandardScaler scaler = LoadScaler(is);
  double gamma = 0.0;
  ExpectLine(is, "gamma") >> gamma;
  std::size_t num_features = 0;
  ExpectLine(is, "num_features") >> num_features;
  auto sv = LoadVector(is, "support_vectors");
  auto coef = LoadVector(is, "coefficients");
  Machine svm(config);
  svm.RestoreState(std::move(scaler), gamma, std::move(sv), std::move(coef),
                   num_features);
  return svm;
}

std::string ReadModelTag(std::istream& is) {
  auto ls = ExpectLine(is, "model");
  std::string tag;
  ls >> tag;
  return tag;
}

}  // namespace

void SaveTree(std::ostream& os, const TreeModel& tree) {
  WriteHeader(os);
  SaveTreeConfig(os, tree.Config());
  os << "nodes " << tree.Nodes().size() << '\n';
  for (const auto& node : tree.Nodes()) {
    os << "n " << node.feature << ' ' << node.threshold << ' ' << node.left
       << ' ' << node.right << ' ' << node.value << ' ' << node.num_samples
       << '\n';
  }
}

TreeModel LoadTree(std::istream& is) {
  const TreeConfig config = LoadTreeConfig(is);
  std::size_t count = 0;
  ExpectLine(is, "nodes") >> count;
  std::vector<TreeNode> nodes(count);
  for (auto& node : nodes) {
    ExpectLine(is, "n") >> node.feature >> node.threshold >> node.left >>
        node.right >> node.value >> node.num_samples;
  }
  return TreeModel::FromNodes(config, std::move(nodes));
}

void SaveScaler(std::ostream& os, const StandardScaler& scaler) {
  WriteHeader(os);
  SaveVector(os, "scaler_mean", scaler.Mean());
  SaveVector(os, "scaler_std", scaler.Std());
}

StandardScaler LoadScaler(std::istream& is) {
  auto mean = LoadVector(is, "scaler_mean");
  auto std = LoadVector(is, "scaler_std");
  return StandardScaler::FromMoments(std::move(mean), std::move(std));
}

void SaveRegressor(std::ostream& os, const Regressor& model) {
  WriteHeader(os);
  if (const auto* dtr = dynamic_cast<const DecisionTreeRegressor*>(&model)) {
    os << "model DTR\n";
    SaveTree(os, dtr->Tree());
    return;
  }
  if (const auto* rf = dynamic_cast<const RandomForestRegressor*>(&model)) {
    os << "model RF_R\n";
    SaveForestConfig(os, rf->Config());
    os << "trees " << rf->Trees().size() << '\n';
    for (const auto& tree : rf->Trees()) SaveTree(os, tree);
    return;
  }
  if (const auto* gbrt =
          dynamic_cast<const GradientBoostedRegressor*>(&model)) {
    os << "model GBRT\n";
    SaveBoostConfig(os, gbrt->Config());
    os << "base " << gbrt->BaseValue() << '\n';
    os << "stages " << gbrt->Stages().size() << '\n';
    for (const auto& tree : gbrt->Stages()) SaveTree(os, tree);
    return;
  }
  if (const auto* svr = dynamic_cast<const SvmRegressor*>(&model)) {
    os << "model SVR\n";
    SaveKernelMachine(os, *svr);
    return;
  }
  GAUGUR_CHECK_MSG(false, "unserializable regressor: " << model.Name());
}

std::unique_ptr<Regressor> LoadRegressor(std::istream& is) {
  const std::string tag = ReadModelTag(is);
  if (tag == "DTR") {
    return std::make_unique<DecisionTreeRegressor>(
        DecisionTreeRegressor::FromTree(LoadTree(is)));
  }
  if (tag == "RF_R") {
    const ForestConfig config = LoadForestConfig(is);
    std::size_t count = 0;
    ExpectLine(is, "trees") >> count;
    std::vector<TreeModel> trees;
    trees.reserve(count);
    for (std::size_t i = 0; i < count; ++i) trees.push_back(LoadTree(is));
    return std::make_unique<RandomForestRegressor>(
        RandomForestRegressor::FromTrees(config, std::move(trees)));
  }
  if (tag == "GBRT") {
    const BoostConfig config = LoadBoostConfig(is);
    double base = 0.0;
    ExpectLine(is, "base") >> base;
    std::size_t count = 0;
    ExpectLine(is, "stages") >> count;
    std::vector<TreeModel> stages;
    stages.reserve(count);
    for (std::size_t i = 0; i < count; ++i) stages.push_back(LoadTree(is));
    return std::make_unique<GradientBoostedRegressor>(
        GradientBoostedRegressor::FromStages(config, base,
                                             std::move(stages)));
  }
  if (tag == "SVR") {
    return std::make_unique<SvmRegressor>(
        LoadKernelMachine<SvmRegressor>(is));
  }
  GAUGUR_CHECK_MSG(false, "unknown regressor tag: " << tag);
}

void SaveClassifier(std::ostream& os, const Classifier& model) {
  WriteHeader(os);
  if (const auto* dtc = dynamic_cast<const DecisionTreeClassifier*>(&model)) {
    os << "model DTC\n";
    SaveTree(os, dtc->Tree());
    return;
  }
  if (const auto* rf = dynamic_cast<const RandomForestClassifier*>(&model)) {
    os << "model RF_C\n";
    SaveForestConfig(os, rf->Config());
    os << "trees " << rf->Trees().size() << '\n';
    for (const auto& tree : rf->Trees()) SaveTree(os, tree);
    return;
  }
  if (const auto* gbdt =
          dynamic_cast<const GradientBoostedClassifier*>(&model)) {
    os << "model GBDT\n";
    SaveBoostConfig(os, gbdt->Config());
    os << "base " << gbdt->BaseValue() << '\n';
    os << "stages " << gbdt->Stages().size() << '\n';
    for (const auto& tree : gbdt->Stages()) SaveTree(os, tree);
    return;
  }
  if (const auto* svc = dynamic_cast<const SvmClassifier*>(&model)) {
    os << "model SVC\n";
    SaveKernelMachine(os, *svc);
    return;
  }
  GAUGUR_CHECK_MSG(false, "unserializable classifier: " << model.Name());
}

std::unique_ptr<Classifier> LoadClassifier(std::istream& is) {
  const std::string tag = ReadModelTag(is);
  if (tag == "DTC") {
    return std::make_unique<DecisionTreeClassifier>(
        DecisionTreeClassifier::FromTree(LoadTree(is)));
  }
  if (tag == "RF_C") {
    const ForestConfig config = LoadForestConfig(is);
    std::size_t count = 0;
    ExpectLine(is, "trees") >> count;
    std::vector<TreeModel> trees;
    trees.reserve(count);
    for (std::size_t i = 0; i < count; ++i) trees.push_back(LoadTree(is));
    return std::make_unique<RandomForestClassifier>(
        RandomForestClassifier::FromTrees(config, std::move(trees)));
  }
  if (tag == "GBDT") {
    const BoostConfig config = LoadBoostConfig(is);
    double base = 0.0;
    ExpectLine(is, "base") >> base;
    std::size_t count = 0;
    ExpectLine(is, "stages") >> count;
    std::vector<TreeModel> stages;
    stages.reserve(count);
    for (std::size_t i = 0; i < count; ++i) stages.push_back(LoadTree(is));
    return std::make_unique<GradientBoostedClassifier>(
        GradientBoostedClassifier::FromStages(config, base,
                                              std::move(stages)));
  }
  if (tag == "SVC") {
    return std::make_unique<SvmClassifier>(
        LoadKernelMachine<SvmClassifier>(is));
  }
  GAUGUR_CHECK_MSG(false, "unknown classifier tag: " << tag);
}

bool SaveRegressorToFile(const std::string& path, const Regressor& model) {
  std::ofstream os(path);
  if (!os) return false;
  SaveRegressor(os, model);
  return static_cast<bool>(os);
}

std::unique_ptr<Regressor> LoadRegressorFromFile(const std::string& path) {
  std::ifstream is(path);
  GAUGUR_CHECK_MSG(static_cast<bool>(is), "cannot open " << path);
  return LoadRegressor(is);
}

bool SaveClassifierToFile(const std::string& path, const Classifier& model) {
  std::ofstream os(path);
  if (!os) return false;
  SaveClassifier(os, model);
  return static_cast<bool>(os);
}

std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path) {
  std::ifstream is(path);
  GAUGUR_CHECK_MSG(static_cast<bool>(is), "cannot open " << path);
  return LoadClassifier(is);
}

}  // namespace gaugur::ml
