// SSE4.2 descent kernel: sixteen rows per block as eight 2-lane double
// vectors. SSE has no gather, so node fields and feature values are
// assembled with scalar loads (the level-ordered layout keeps them in
// one or two cache lines per step); the left-or-right choice is still
// branchless — a packed _mm_cmpgt_pd plus movemask turns both lanes'
// compares into two index-add bits with no data-dependent jump.
//
// Sixteen rows in flight (vs the scalar kernel's four) matter for the
// same reason as in the AVX2 kernel: each row's descent is a serial
// load -> compare -> advance chain, and the extra independent chains
// keep the load ports fed while each chain waits out its own latency.
// The per-row state lives in small arrays whose constant-trip loops the
// compiler unrolls. Short remainders run a 4-row pass, then row-at-a-
// time scalar.
//
// Bit-identicality with the scalar kernel: _mm_cmpgt_pd matches the
// ordered `>` (NaN compares false), and accumulation is an explicit
// _mm_mul_pd followed by _mm_add_pd — one rounding each, identical to
// `out[i] += scale * value[idx]`, never contracted into an FMA
// (-msse4.2 has no FMA).
#include "ml/tree_kernel_simd.h"

#if defined(GAUGUR_SIMD_X86)

#include <emmintrin.h>

namespace gaugur::ml::detail {

namespace {

/// One block of R rows (R even) starting at `data`, descended level by
/// level in lockstep. Force-inlined: out of line the constant-R loops
/// stay rolled and the index state spills (same effect as in the AVX2
/// kernel, ~2x there).
template <int R>
__attribute__((always_inline)) inline void DescendBlock(const FlatNode* nodes, const double* value,
                  std::int32_t root, std::int32_t levels,
                  const double* data, std::size_t cols, double* out,
                  __m128d vscale) {
  const double* row[R];
  row[0] = data;
  for (int u = 1; u < R; ++u) row[u] = row[u - 1] + cols;
  std::int32_t idx[R];
  for (int u = 0; u < R; ++u) idx[u] = root;
  for (std::int32_t d = 0; d < levels; ++d) {
    for (int u = 0; u < R; u += 2) {
      const FlatNode a = nodes[idx[u]];
      const FlatNode b = nodes[idx[u + 1]];
      const __m128d x =
          _mm_set_pd(row[u + 1][b.feature], row[u][a.feature]);
      const __m128d t = _mm_set_pd(b.threshold, a.threshold);
      const int m = _mm_movemask_pd(_mm_cmpgt_pd(x, t));
      idx[u] = a.child + (m & 1);
      idx[u + 1] = b.child + (m >> 1);
    }
  }
  for (int u = 0; u < R; u += 2) {
    const __m128d leaf = _mm_set_pd(value[idx[u + 1]], value[idx[u]]);
    _mm_storeu_pd(out + u, _mm_add_pd(_mm_loadu_pd(out + u),
                                      _mm_mul_pd(vscale, leaf)));
  }
}

}  // namespace

void AccumulateTreeSse(const FlatNode* nodes, const double* value,
                       std::int32_t root, std::int32_t levels,
                       const double* data, std::size_t rows,
                       std::size_t cols, double* out, double scale) {
  const __m128d vscale = _mm_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 16 <= rows; i += 16) {
    DescendBlock<16>(nodes, value, root, levels, data + i * cols, cols,
                     out + i, vscale);
  }
  for (; i + 4 <= rows; i += 4) {
    DescendBlock<4>(nodes, value, root, levels, data + i * cols, cols,
                    out + i, vscale);
  }
  for (; i < rows; ++i) {
    const double* row = data + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const FlatNode& n = nodes[idx];
      idx = n.child +
            static_cast<std::int32_t>(row[n.feature] > n.threshold);
    }
    out[i] += scale * value[idx];
  }
}

}  // namespace gaugur::ml::detail

#endif  // GAUGUR_SIMD_X86
