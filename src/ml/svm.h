// Kernel support vector machines: SVC (hinge loss) and SVR (epsilon-
// insensitive loss), solved by dual coordinate descent.
//
// The bias term is folded into the kernel (K~ = K + 1), which removes the
// dual equality constraint and lets plain box-constrained coordinate
// descent converge without SMO's working-set pair selection. Features are
// standardized internally; the RBF gamma follows the "scale" heuristic
// 1/d on standardized features.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/model.h"
#include "ml/scaler.h"

namespace gaugur::ml {

enum class KernelKind { kRbf, kLinear };

struct SvmConfig {
  KernelKind kernel = KernelKind::kRbf;
  /// Box constraint C.
  double c = 10.0;
  /// RBF gamma; <= 0 selects 1/num_features on standardized inputs.
  double gamma = -1.0;
  /// SVR tube half-width.
  double epsilon = 0.01;
  int max_epochs = 200;
  double tolerance = 1e-5;
  std::uint64_t seed = 17;
};

/// Shared kernel machinery + support vector storage.
class KernelMachine {
 public:
  explicit KernelMachine(SvmConfig config) : config_(config) {}

  double Kernel(std::span<const double> a, std::span<const double> b) const;

  /// Decision value sum_j coef_j * (K(sv_j, x) + 1) on a raw input row.
  double Decision(std::span<const double> x) const;

  std::size_t NumSupportVectors() const { return coef_.size(); }
  const SvmConfig& Config() const { return config_; }

  /// Serialization state access.
  const StandardScaler& Scaler() const { return scaler_; }
  double EffectiveGamma() const { return effective_gamma_; }
  const std::vector<double>& SupportVectorData() const { return sv_; }
  const std::vector<double>& Coefficients() const { return coef_; }
  std::size_t NumFeatures() const { return num_features_; }
  void RestoreState(StandardScaler scaler, double gamma,
                    std::vector<double> sv, std::vector<double> coef,
                    std::size_t num_features) {
    scaler_ = std::move(scaler);
    effective_gamma_ = gamma;
    sv_ = std::move(sv);
    coef_ = std::move(coef);
    num_features_ = num_features;
  }

 protected:
  /// Gram matrix of the standardized training set with the +1 bias fold.
  std::vector<double> BuildGram(const Dataset& scaled) const;

  /// Keeps only rows with non-negligible dual coefficients.
  void StoreSupportVectors(const Dataset& scaled,
                           std::span<const double> dual_coef);

  SvmConfig config_;
  StandardScaler scaler_;
  double effective_gamma_ = 0.0;
  std::vector<double> sv_;  // row-major support vectors (standardized)
  std::vector<double> coef_;
  std::size_t num_features_ = 0;
};

class SvmClassifier final : public Classifier, private KernelMachine {
 public:
  explicit SvmClassifier(SvmConfig config = {}) : KernelMachine(config) {}

  void Fit(const Dataset& data) override;
  /// Logistic link on the margin — adequate for thresholding at 0.5.
  double PredictProb(std::span<const double> x) const override;
  std::string Name() const override { return "SVC"; }

  double DecisionValue(std::span<const double> x) const { return Decision(x); }
  using KernelMachine::Coefficients;
  using KernelMachine::Config;
  using KernelMachine::EffectiveGamma;
  using KernelMachine::NumFeatures;
  using KernelMachine::NumSupportVectors;
  using KernelMachine::RestoreState;
  using KernelMachine::Scaler;
  using KernelMachine::SupportVectorData;
};

class SvmRegressor final : public Regressor, private KernelMachine {
 public:
  explicit SvmRegressor(SvmConfig config = {}) : KernelMachine(config) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return "SVR"; }

  using KernelMachine::Coefficients;
  using KernelMachine::Config;
  using KernelMachine::EffectiveGamma;
  using KernelMachine::NumFeatures;
  using KernelMachine::NumSupportVectors;
  using KernelMachine::RestoreState;
  using KernelMachine::Scaler;
  using KernelMachine::SupportVectorData;
};

}  // namespace gaugur::ml
