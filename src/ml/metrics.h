// Evaluation metrics matching the paper's definitions:
//  * regression error  |pred - actual| / actual   (§4.2)
//  * classification accuracy, and the precision/recall breakdown of the
//    feasibility judgement (§5.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gaugur::ml {

/// Mean of |pred - actual| / |actual| over all samples.
double MeanRelativeError(std::span<const double> predicted,
                         std::span<const double> actual);

/// Per-sample relative errors (for CDF plots).
std::vector<double> RelativeErrors(std::span<const double> predicted,
                                   std::span<const double> actual);

double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual);

double RootMeanSquaredError(std::span<const double> predicted,
                            std::span<const double> actual);

/// Confusion-matrix counts for binary decisions. "Positive" follows the
/// paper's §5.1 convention: a positive is a *feasible* judgement.
struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  std::size_t Total() const { return tp + fp + fn + tn; }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
};

ConfusionMatrix ComputeConfusion(std::span<const int> predicted,
                                 std::span<const int> actual);

/// Fraction of matching labels.
double Accuracy(std::span<const int> predicted, std::span<const int> actual);

}  // namespace gaugur::ml
