// Internal contract between FlatForest's dispatcher (tree_kernel.cpp)
// and the per-ISA descent kernels (tree_kernel_sse.cpp compiled with
// -msse4.2, tree_kernel_avx2.cpp compiled with -mavx2). These TUs exist
// only when the build enables GAUGUR_SIMD_X86; the dispatcher never
// calls a kernel the running CPU cannot execute.
//
// Every kernel implements the same operation as the portable scalar
// block descent in tree_kernel.cpp, over the rows of one row-major
// matrix against one tree:
//
//   for each row i: walk `levels` steps from `root` following
//     idx = nodes[idx].child + (row[nodes[idx].feature] >
//                               nodes[idx].threshold)
//   then out[i] += scale * value[idx]   (separate multiply and add)
//
// and must keep the results bit-identical to that scalar kernel: same
// ordered `>` compare (NaN descends left), no FMA contraction in the
// accumulation, rows accumulated in index order.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ml/tree_kernel.h"

namespace gaugur::ml::detail {

#if defined(GAUGUR_SIMD_X86)

void AccumulateTreeSse(const FlatNode* nodes, const double* value,
                       std::int32_t root, std::int32_t levels,
                       const double* data, std::size_t rows,
                       std::size_t cols, double* out, double scale);

void AccumulateTreeAvx2(const FlatNode* nodes, const double* value,
                        std::int32_t root, std::int32_t levels,
                        const double* data, std::size_t rows,
                        std::size_t cols, double* out, double scale);

/// Quantized descent over a pre-binned batch (uint16 bin ids, row-major,
/// padded with two trailing elements for the 32-bit bin gather's 4-byte
/// read). `meta[i]` packs (feature << 16) | threshold_rank and
/// `child[i]` the left-child index — the 8-byte SoA layout built by
/// FlatForest::FinalizeQuantized. Same exactness contract: results are
/// bit-identical to the float kernels (binning snaps thresholds to
/// their own edges, so every compare decides identically).
void AccumulateTreeQuantAvx2(const std::int32_t* meta,
                             const std::int32_t* child, const double* value,
                             std::int32_t root, std::int32_t levels,
                             const std::uint16_t* bins, std::size_t rows,
                             std::size_t cols, double* out, double scale);

#endif  // GAUGUR_SIMD_X86

}  // namespace gaugur::ml::detail
