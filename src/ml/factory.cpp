#include "ml/factory.h"

#include "common/check.h"
#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "ml/tree_kernel.h"

namespace gaugur::ml {

void BuildFlatForest(std::span<const TreeModel> trees, FlatForest& flat) {
  flat.Clear();
  for (const TreeModel& tree : trees) flat.Add(tree);
  flat.FinalizeQuantized();
}

std::unique_ptr<Regressor> MakeRegressor(const std::string& name,
                                         std::uint64_t seed) {
  if (name == "DTR") {
    auto config = DecisionTreeRegressor::MakeDefaultConfig();
    config.seed = seed;
    return std::make_unique<DecisionTreeRegressor>(config);
  }
  if (name == "GBRT") {
    BoostConfig config;
    config.seed = seed;
    return std::make_unique<GradientBoostedRegressor>(config);
  }
  if (name == "RF") {
    ForestConfig config;
    config.seed = seed;
    return std::make_unique<RandomForestRegressor>(config);
  }
  if (name == "SVR") {
    SvmConfig config;
    config.seed = seed;
    return std::make_unique<SvmRegressor>(config);
  }
  GAUGUR_CHECK_MSG(false, "unknown regressor: " << name);
}

std::unique_ptr<Classifier> MakeClassifier(const std::string& name,
                                           std::uint64_t seed) {
  if (name == "DTC") {
    auto config = DecisionTreeClassifier::MakeDefaultConfig();
    config.seed = seed;
    return std::make_unique<DecisionTreeClassifier>(config);
  }
  if (name == "GBDT") {
    BoostConfig config;
    config.seed = seed;
    return std::make_unique<GradientBoostedClassifier>(config);
  }
  if (name == "RF") {
    ForestConfig config;
    config.seed = seed;
    return std::make_unique<RandomForestClassifier>(config);
  }
  if (name == "SVC") {
    SvmConfig config;
    config.seed = seed;
    return std::make_unique<SvmClassifier>(config);
  }
  GAUGUR_CHECK_MSG(false, "unknown classifier: " << name);
}

const std::vector<std::string>& RegressorNames() {
  static const std::vector<std::string> names = {"DTR", "GBRT", "RF", "SVR"};
  return names;
}

const std::vector<std::string>& ClassifierNames() {
  static const std::vector<std::string> names = {"DTC", "GBDT", "RF", "SVC"};
  return names;
}

}  // namespace gaugur::ml
