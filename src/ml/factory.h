// Name-based learner construction — the benches sweep algorithms by the
// names the paper uses (DTR/GBRT/RF/SVR and DTC/GBDT/RF/SVC).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace gaugur::ml {

class TreeModel;
class FlatForest;

/// Flattens fitted trees into `flat` (Clear + Add in order) and builds
/// the quantized descent tables (FinalizeQuantized). The one kernel
/// construction path every ensemble's RebuildKernel routes through, so
/// a fitted kernel is always quantization-ready — never call the
/// Add loop by hand and forget the finalize.
void BuildFlatForest(std::span<const TreeModel> trees, FlatForest& flat);

/// Creates a regressor by paper name; CHECK-fails on unknown names.
/// Known: "DTR", "GBRT", "RF", "SVR".
std::unique_ptr<Regressor> MakeRegressor(const std::string& name,
                                         std::uint64_t seed = 21);

/// Creates a classifier by paper name; CHECK-fails on unknown names.
/// Known: "DTC", "GBDT", "RF", "SVC".
std::unique_ptr<Classifier> MakeClassifier(const std::string& name,
                                           std::uint64_t seed = 23);

const std::vector<std::string>& RegressorNames();
const std::vector<std::string>& ClassifierNames();

}  // namespace gaugur::ml
