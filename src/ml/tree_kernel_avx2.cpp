// AVX2 descent kernel: 64 rows per block as sixteen 4-lane vectors of
// 64-bit node indices. Each step is three gathers per vector — the
// node's threshold (first 8 bytes of the 16-byte record), its packed
// {feature, child} pair (second 8 bytes, gathered from the odd-element
// stream `node_epi + 1` so no per-step index adjustment is needed), and
// the row's feature value (per-lane flat offset into the row-major
// matrix) — then a branchless `child + (x > threshold)` advance:
// the _CMP_GT_OQ mask is 0 or -1 per lane, so subtracting it from the
// child index adds the compare bit. The level-ordered layout keeps each
// step's gather addresses inside one contiguous level segment.
//
// Why sixteen vectors: a single vector's descent is a serial
// gather -> compare -> advance chain (tens of cycles per level), far
// longer than a gather's issue cost. Sixteen independent chains per
// block keep the load ports busy while each chain waits out its own
// latency; with only two chains the kernel is latency-bound and loses
// to the 4-row scalar unroll it replaces (measured ~0.8x; sixteen
// chains measure ~1.8x). The index state lives in small arrays whose
// constant-trip loops the compiler unrolls; spilled vectors cost an L1
// round-trip, far cheaper than an idle gather chain. Short remainders
// run an 8-row pass, then the scalar tail.
//
// Bit-identicality with the scalar kernel: _CMP_GT_OQ matches the
// ordered `>` (NaN compares false, descends left), index arithmetic is
// exact, and the accumulation is an explicit _mm256_mul_pd followed by
// _mm256_add_pd — the same one-rounding multiply and one-rounding add
// as `out[i] += scale * value[idx]`, never contracted into an FMA
// (this TU is compiled with -mavx2 only, not -mfma).
#include "ml/tree_kernel_simd.h"

#if defined(GAUGUR_SIMD_X86)

#include <immintrin.h>

// GCC 12 defines the unmasked epi32 gathers in terms of the masked form
// with an uninitialized pass-through operand and then warns about it
// (GCC PR105593). The operand is fully overwritten under the all-ones
// mask, so the warning is a false positive.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace gaugur::ml::detail {

namespace {

/// One block of V * 4 rows starting at flat element offset `base`
/// (= first_row * cols), descended level by level in lockstep.
/// Force-inlined: out of line the constant-V loops stay rolled and the
/// index state spills, costing ~2x (measured).
template <int V>
__attribute__((always_inline)) inline void DescendBlock(const double* node_pd, const long long* node_epi,
                  const double* value, std::int32_t root,
                  std::int32_t levels, const double* data, long long base,
                  long long cols, double* out, __m256d vscale) {
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i lane_off = _mm256_set_epi64x(3 * cols, 2 * cols, cols, 0);
  const __m256i vec_step = _mm256_set1_epi64x(4 * cols);

  // Per-lane base offset of each row's first feature.
  __m256i row[V];
  row[0] = _mm256_add_epi64(_mm256_set1_epi64x(base), lane_off);
  for (int u = 1; u < V; ++u) {
    row[u] = _mm256_add_epi64(row[u - 1], vec_step);
  }
  __m256i idx[V];
  const __m256i vroot = _mm256_set1_epi64x(root);
  for (int u = 0; u < V; ++u) idx[u] = vroot;
  for (std::int32_t d = 0; d < levels; ++d) {
    for (int u = 0; u < V; ++u) {
      // Node records are 16 bytes = two 8-byte gather elements; even
      // element 2*idx is the threshold, and the same offset into the
      // odd-element stream is the {feature, child} pair.
      const __m256i off = _mm256_slli_epi64(idx[u], 1);
      const __m256d thr = _mm256_i64gather_pd(node_pd, off, 8);
      const __m256i pair = _mm256_i64gather_epi64(node_epi + 1, off, 8);
      const __m256i feat = _mm256_and_si256(pair, lo32);
      const __m256d x =
          _mm256_i64gather_pd(data, _mm256_add_epi64(row[u], feat), 8);
      const __m256d gt = _mm256_cmp_pd(x, thr, _CMP_GT_OQ);
      // child + (x > threshold): the mask lanes are 0 or -1.
      idx[u] = _mm256_sub_epi64(_mm256_srli_epi64(pair, 32),
                                _mm256_castpd_si256(gt));
    }
  }
  for (int u = 0; u < V; ++u) {
    const __m256d leaf = _mm256_i64gather_pd(value, idx[u], 8);
    _mm256_storeu_pd(out + 4 * u,
                     _mm256_add_pd(_mm256_loadu_pd(out + 4 * u),
                                   _mm256_mul_pd(vscale, leaf)));
  }
}

}  // namespace

void AccumulateTreeAvx2(const FlatNode* nodes, const double* value,
                        std::int32_t root, std::int32_t levels,
                        const double* data, std::size_t rows,
                        std::size_t cols, double* out, double scale) {
  const auto* node_pd = reinterpret_cast<const double*>(nodes);
  const auto* node_epi = reinterpret_cast<const long long*>(nodes);
  const __m256d vscale = _mm256_set1_pd(scale);
  const auto c = static_cast<long long>(cols);

  std::size_t i = 0;
  for (; i + 64 <= rows; i += 64) {
    DescendBlock<16>(node_pd, node_epi, value, root, levels, data,
                     static_cast<long long>(i * cols), c, out + i, vscale);
  }
  for (; i + 8 <= rows; i += 8) {
    DescendBlock<2>(node_pd, node_epi, value, root, levels, data,
                    static_cast<long long>(i * cols), c, out + i, vscale);
  }
  // Scalar remainder: same recurrence; no FMA possible (-mavx2 does not
  // enable FMA contraction targets).
  for (; i < rows; ++i) {
    const double* row = data + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const FlatNode& n = nodes[idx];
      idx = n.child +
            static_cast<std::int32_t>(row[n.feature] > n.threshold);
    }
    out[i] += scale * value[idx];
  }
}

namespace {

/// Quantized block: V vectors of EIGHT rows each (32-bit lanes), twice
/// the float kernel's width. A step needs the node's packed
/// (feature << 16 | rank) meta word, its child index, and the row's bin
/// id, then the same branchless advance, on integers:
/// `child - (bin > rank ? -1 : 0)`. Signed epi32 compare is exact
/// because bins and ranks both live in [0, 65535]. Leaf rank 0xFFFF
/// exceeds every bin id (edges are capped at 65534), so leaf records
/// keep adding 0 exactly like their +inf float thresholds.
///
/// The bin id is always a scale-2 gather over the uint16 bin matrix
/// (the low 16 bits of each 4-byte load are the bin, the high 16 are
/// the next element and get masked off — the caller pads the bin buffer
/// so the last element's 4-byte read stays in bounds). The meta/child
/// words, though, only need gathers on WIDE levels. The level-ordered
/// layout gives each level one contiguous segment, and the first node's
/// child is by construction the next level's base, so the kernel walks
/// segment bases with a scalar load per level and knows every level's
/// node count. A level of <= 8 nodes fits one register: load the
/// segment once per block and let each vector pick its lanes with
/// vpermd (selector = idx - base; 1 uop instead of an 8-lane gather).
/// <= 16 nodes take two registers and a blend on selector bit 3 (vpermd
/// only reads the selector's low 3 bits, so the same selector indexes
/// both halves). Since every tree's levels 0..3 have at most 8 nodes
/// and level 4 at most 16, a depth-5 boosting stage descends with no
/// meta/child gathers at all — only the unavoidable per-row bin gather
/// — which is where the measured ~2x over the float kernel comes from:
/// one gather per step instead of three, at twice the lane width.
template <int V>
__attribute__((always_inline)) inline void DescendQuantBlock(
    const int* meta, const int* child, const double* value,
    std::int32_t root, std::int32_t levels, const int* bins_i32, int base,
    int cols, double* out, __m256d vscale) {
  const __m256i lo16 = _mm256_set1_epi32(0xFFFF);
  const __m256i lane_off =
      _mm256_set_epi32(7 * cols, 6 * cols, 5 * cols, 4 * cols, 3 * cols,
                       2 * cols, cols, 0);
  const __m256i vec_step = _mm256_set1_epi32(8 * cols);

  __m256i row[V];
  row[0] = _mm256_add_epi32(_mm256_set1_epi32(base), lane_off);
  for (int u = 1; u < V; ++u) {
    row[u] = _mm256_add_epi32(row[u - 1], vec_step);
  }
  __m256i idx[V];
  const __m256i vroot = _mm256_set1_epi32(root);
  for (int u = 0; u < V; ++u) idx[u] = vroot;
  std::int32_t lbase = root;
  for (std::int32_t d = 0; d < levels; ++d) {
    // First node's child == next level's base (adjacent-children /
    // chained-leaf construction), so the segment width is free.
    const std::int32_t nbase = child[lbase];
    const std::int32_t lsize = nbase - lbase;
    const __m256i vbase = _mm256_set1_epi32(lbase);
    if (lsize == 1) {
      // Single-node level (every root; chained-leaf spines): the node
      // word is a scalar — broadcast it, no selector or permute at all.
      const auto mw = static_cast<std::uint32_t>(meta[lbase]);
      const __m256i rank = _mm256_set1_epi32(static_cast<int>(mw & 0xFFFFu));
      const __m256i feat = _mm256_set1_epi32(static_cast<int>(mw >> 16));
      const __m256i ch = _mm256_set1_epi32(child[lbase]);
      for (int u = 0; u < V; ++u) {
        const __m256i braw = _mm256_i32gather_epi32(
            bins_i32, _mm256_add_epi32(row[u], feat), 2);
        const __m256i bin = _mm256_and_si256(braw, lo16);
        idx[u] = _mm256_sub_epi32(ch, _mm256_cmpgt_epi32(bin, rank));
      }
    } else if (lsize <= 8) {
      const __m256i qm = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(meta + lbase));
      const __m256i qc = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(child + lbase));
      for (int u = 0; u < V; ++u) {
        const __m256i sel = _mm256_sub_epi32(idx[u], vbase);
        const __m256i m = _mm256_permutevar8x32_epi32(qm, sel);
        const __m256i ch = _mm256_permutevar8x32_epi32(qc, sel);
        const __m256i feat = _mm256_srli_epi32(m, 16);
        const __m256i rank = _mm256_and_si256(m, lo16);
        const __m256i braw = _mm256_i32gather_epi32(
            bins_i32, _mm256_add_epi32(row[u], feat), 2);
        const __m256i bin = _mm256_and_si256(braw, lo16);
        // child + (bin > rank): the compare mask lanes are 0 or -1.
        idx[u] = _mm256_sub_epi32(ch, _mm256_cmpgt_epi32(bin, rank));
      }
    } else if (lsize <= 16) {
      const __m256i seven = _mm256_set1_epi32(7);
      const __m256i qm0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(meta + lbase));
      const __m256i qm1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(meta + lbase + 8));
      const __m256i qc0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(child + lbase));
      const __m256i qc1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(child + lbase + 8));
      for (int u = 0; u < V; ++u) {
        const __m256i sel = _mm256_sub_epi32(idx[u], vbase);
        const __m256i hi = _mm256_cmpgt_epi32(sel, seven);
        const __m256i m = _mm256_blendv_epi8(
            _mm256_permutevar8x32_epi32(qm0, sel),
            _mm256_permutevar8x32_epi32(qm1, sel), hi);
        const __m256i ch = _mm256_blendv_epi8(
            _mm256_permutevar8x32_epi32(qc0, sel),
            _mm256_permutevar8x32_epi32(qc1, sel), hi);
        const __m256i feat = _mm256_srli_epi32(m, 16);
        const __m256i rank = _mm256_and_si256(m, lo16);
        const __m256i braw = _mm256_i32gather_epi32(
            bins_i32, _mm256_add_epi32(row[u], feat), 2);
        const __m256i bin = _mm256_and_si256(braw, lo16);
        idx[u] = _mm256_sub_epi32(ch, _mm256_cmpgt_epi32(bin, rank));
      }
    } else {
      for (int u = 0; u < V; ++u) {
        const __m256i m = _mm256_i32gather_epi32(meta, idx[u], 4);
        const __m256i ch = _mm256_i32gather_epi32(child, idx[u], 4);
        const __m256i feat = _mm256_srli_epi32(m, 16);
        const __m256i rank = _mm256_and_si256(m, lo16);
        const __m256i braw = _mm256_i32gather_epi32(
            bins_i32, _mm256_add_epi32(row[u], feat), 2);
        const __m256i bin = _mm256_and_si256(braw, lo16);
        idx[u] = _mm256_sub_epi32(ch, _mm256_cmpgt_epi32(bin, rank));
      }
    }
    lbase = nbase;
  }
  for (int u = 0; u < V; ++u) {
    const __m128i lo = _mm256_castsi256_si128(idx[u]);
    const __m128i hi = _mm256_extracti128_si256(idx[u], 1);
    const __m256d leaf_lo = _mm256_i32gather_pd(value, lo, 8);
    const __m256d leaf_hi = _mm256_i32gather_pd(value, hi, 8);
    _mm256_storeu_pd(
        out + 8 * u,
        _mm256_add_pd(_mm256_loadu_pd(out + 8 * u),
                      _mm256_mul_pd(vscale, leaf_lo)));
    _mm256_storeu_pd(
        out + 8 * u + 4,
        _mm256_add_pd(_mm256_loadu_pd(out + 8 * u + 4),
                      _mm256_mul_pd(vscale, leaf_hi)));
  }
}

}  // namespace

void AccumulateTreeQuantAvx2(const std::int32_t* meta,
                             const std::int32_t* child, const double* value,
                             std::int32_t root, std::int32_t levels,
                             const std::uint16_t* bins, std::size_t rows,
                             std::size_t cols, double* out, double scale) {
  const auto* m32 = reinterpret_cast<const int*>(meta);
  const auto* c32 = reinterpret_cast<const int*>(child);
  const auto* b32 = reinterpret_cast<const int*>(bins);
  const __m256d vscale = _mm256_set1_pd(scale);
  const int c = static_cast<int>(cols);

  // 128-row main block: sixteen independent 8-row descent chains, the
  // same ILP budget (in rows, double the float kernel's) that hides the
  // serial gather -> compare -> advance latency per chain.
  std::size_t i = 0;
  for (; i + 128 <= rows; i += 128) {
    DescendQuantBlock<16>(m32, c32, value, root, levels, b32,
                          static_cast<int>(i * cols), c, out + i, vscale);
  }
  for (; i + 16 <= rows; i += 16) {
    DescendQuantBlock<2>(m32, c32, value, root, levels, b32,
                         static_cast<int>(i * cols), c, out + i, vscale);
  }
  // Scalar quantized remainder: identical recurrence on the bin ids.
  for (; i < rows; ++i) {
    const std::uint16_t* row = bins + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const auto m = static_cast<std::uint32_t>(meta[idx]);
      idx = child[idx] +
            static_cast<std::int32_t>(row[m >> 16] > (m & 0xFFFFu));
    }
    out[i] += scale * value[idx];
  }
}

}  // namespace gaugur::ml::detail

#endif  // GAUGUR_SIMD_X86
