// AVX2 descent kernel: 64 rows per block as sixteen 4-lane vectors of
// 64-bit node indices. Each step is three gathers per vector — the
// node's threshold (first 8 bytes of the 16-byte record), its packed
// {feature, child} pair (second 8 bytes, gathered from the odd-element
// stream `node_epi + 1` so no per-step index adjustment is needed), and
// the row's feature value (per-lane flat offset into the row-major
// matrix) — then a branchless `child + (x > threshold)` advance:
// the _CMP_GT_OQ mask is 0 or -1 per lane, so subtracting it from the
// child index adds the compare bit. The level-ordered layout keeps each
// step's gather addresses inside one contiguous level segment.
//
// Why sixteen vectors: a single vector's descent is a serial
// gather -> compare -> advance chain (tens of cycles per level), far
// longer than a gather's issue cost. Sixteen independent chains per
// block keep the load ports busy while each chain waits out its own
// latency; with only two chains the kernel is latency-bound and loses
// to the 4-row scalar unroll it replaces (measured ~0.8x; sixteen
// chains measure ~1.8x). The index state lives in small arrays whose
// constant-trip loops the compiler unrolls; spilled vectors cost an L1
// round-trip, far cheaper than an idle gather chain. Short remainders
// run an 8-row pass, then the scalar tail.
//
// Bit-identicality with the scalar kernel: _CMP_GT_OQ matches the
// ordered `>` (NaN compares false, descends left), index arithmetic is
// exact, and the accumulation is an explicit _mm256_mul_pd followed by
// _mm256_add_pd — the same one-rounding multiply and one-rounding add
// as `out[i] += scale * value[idx]`, never contracted into an FMA
// (this TU is compiled with -mavx2 only, not -mfma).
#include "ml/tree_kernel_simd.h"

#if defined(GAUGUR_SIMD_X86)

#include <immintrin.h>

namespace gaugur::ml::detail {

namespace {

/// One block of V * 4 rows starting at flat element offset `base`
/// (= first_row * cols), descended level by level in lockstep.
/// Force-inlined: out of line the constant-V loops stay rolled and the
/// index state spills, costing ~2x (measured).
template <int V>
__attribute__((always_inline)) inline void DescendBlock(const double* node_pd, const long long* node_epi,
                  const double* value, std::int32_t root,
                  std::int32_t levels, const double* data, long long base,
                  long long cols, double* out, __m256d vscale) {
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i lane_off = _mm256_set_epi64x(3 * cols, 2 * cols, cols, 0);
  const __m256i vec_step = _mm256_set1_epi64x(4 * cols);

  // Per-lane base offset of each row's first feature.
  __m256i row[V];
  row[0] = _mm256_add_epi64(_mm256_set1_epi64x(base), lane_off);
  for (int u = 1; u < V; ++u) {
    row[u] = _mm256_add_epi64(row[u - 1], vec_step);
  }
  __m256i idx[V];
  const __m256i vroot = _mm256_set1_epi64x(root);
  for (int u = 0; u < V; ++u) idx[u] = vroot;
  for (std::int32_t d = 0; d < levels; ++d) {
    for (int u = 0; u < V; ++u) {
      // Node records are 16 bytes = two 8-byte gather elements; even
      // element 2*idx is the threshold, and the same offset into the
      // odd-element stream is the {feature, child} pair.
      const __m256i off = _mm256_slli_epi64(idx[u], 1);
      const __m256d thr = _mm256_i64gather_pd(node_pd, off, 8);
      const __m256i pair = _mm256_i64gather_epi64(node_epi + 1, off, 8);
      const __m256i feat = _mm256_and_si256(pair, lo32);
      const __m256d x =
          _mm256_i64gather_pd(data, _mm256_add_epi64(row[u], feat), 8);
      const __m256d gt = _mm256_cmp_pd(x, thr, _CMP_GT_OQ);
      // child + (x > threshold): the mask lanes are 0 or -1.
      idx[u] = _mm256_sub_epi64(_mm256_srli_epi64(pair, 32),
                                _mm256_castpd_si256(gt));
    }
  }
  for (int u = 0; u < V; ++u) {
    const __m256d leaf = _mm256_i64gather_pd(value, idx[u], 8);
    _mm256_storeu_pd(out + 4 * u,
                     _mm256_add_pd(_mm256_loadu_pd(out + 4 * u),
                                   _mm256_mul_pd(vscale, leaf)));
  }
}

}  // namespace

void AccumulateTreeAvx2(const FlatNode* nodes, const double* value,
                        std::int32_t root, std::int32_t levels,
                        const double* data, std::size_t rows,
                        std::size_t cols, double* out, double scale) {
  const auto* node_pd = reinterpret_cast<const double*>(nodes);
  const auto* node_epi = reinterpret_cast<const long long*>(nodes);
  const __m256d vscale = _mm256_set1_pd(scale);
  const auto c = static_cast<long long>(cols);

  std::size_t i = 0;
  for (; i + 64 <= rows; i += 64) {
    DescendBlock<16>(node_pd, node_epi, value, root, levels, data,
                     static_cast<long long>(i * cols), c, out + i, vscale);
  }
  for (; i + 8 <= rows; i += 8) {
    DescendBlock<2>(node_pd, node_epi, value, root, levels, data,
                    static_cast<long long>(i * cols), c, out + i, vscale);
  }
  // Scalar remainder: same recurrence; no FMA possible (-mavx2 does not
  // enable FMA contraction targets).
  for (; i < rows; ++i) {
    const double* row = data + i * cols;
    std::int32_t idx = root;
    for (std::int32_t d = 0; d < levels; ++d) {
      const FlatNode& n = nodes[idx];
      idx = n.child +
            static_cast<std::int32_t>(row[n.feature] > n.threshold);
    }
    out[i] += scale * value[idx];
  }
}

}  // namespace gaugur::ml::detail

#endif  // GAUGUR_SIMD_X86
