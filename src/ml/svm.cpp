#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/mathutil.h"
#include "common/rng.h"

namespace gaugur::ml {

namespace {
constexpr double kCoefCutoff = 1e-9;
}

double KernelMachine::Kernel(std::span<const double> a,
                             std::span<const double> b) const {
  GAUGUR_CHECK(a.size() == b.size());
  if (config_.kernel == KernelKind::kLinear) {
    double dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    return dot;
  }
  double dist_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    dist_sq += d * d;
  }
  return std::exp(-effective_gamma_ * dist_sq);
}

std::vector<double> KernelMachine::BuildGram(const Dataset& scaled) const {
  const std::size_t n = scaled.NumRows();
  std::vector<double> gram(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = Kernel(scaled.Row(i), scaled.Row(j)) + 1.0;
      gram[i * n + j] = k;
      gram[j * n + i] = k;
    }
  }
  return gram;
}

void KernelMachine::StoreSupportVectors(const Dataset& scaled,
                                        std::span<const double> dual_coef) {
  sv_.clear();
  coef_.clear();
  num_features_ = scaled.NumFeatures();
  for (std::size_t i = 0; i < scaled.NumRows(); ++i) {
    if (std::abs(dual_coef[i]) <= kCoefCutoff) continue;
    const auto row = scaled.Row(i);
    sv_.insert(sv_.end(), row.begin(), row.end());
    coef_.push_back(dual_coef[i]);
  }
}

double KernelMachine::Decision(std::span<const double> x) const {
  GAUGUR_CHECK_MSG(!coef_.empty(), "Predict before Fit");
  thread_local std::vector<double> scaled;
  scaler_.Transform(x, scaled);
  double value = 0.0;
  for (std::size_t j = 0; j < coef_.size(); ++j) {
    std::span<const double> sv(sv_.data() + j * num_features_,
                               num_features_);
    value += coef_[j] * (Kernel(sv, scaled) + 1.0);
  }
  return value;
}

void SvmClassifier::Fit(const Dataset& data) {
  GAUGUR_CHECK(data.NumRows() >= 2);
  scaler_.Fit(data);
  const Dataset scaled = scaler_.TransformDataset(data);
  const std::size_t n = scaled.NumRows();
  effective_gamma_ = config_.gamma > 0.0
                         ? config_.gamma
                         : 1.0 / static_cast<double>(scaled.NumFeatures());

  // Labels to {-1, +1}.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = scaled.Target(i);
    GAUGUR_CHECK_MSG(t == 0.0 || t == 1.0, "labels must be 0/1");
    y[i] = t > 0.5 ? 1.0 : -1.0;
  }

  const std::vector<double> gram = BuildGram(scaled);
  std::vector<double> alpha(n, 0.0);
  // margin[i] = y_i * f(x_i); maintained incrementally.
  std::vector<double> margin(n, 0.0);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  common::Rng rng(config_.seed);

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.Shuffle(order);
    double max_update = 0.0;
    for (std::size_t i : order) {
      const double kii = gram[i * n + i];
      if (kii <= 0.0) continue;
      const double delta_unclipped = (1.0 - margin[i]) / kii;
      const double new_alpha =
          std::clamp(alpha[i] + delta_unclipped, 0.0, config_.c);
      const double delta = new_alpha - alpha[i];
      if (std::abs(delta) < kCoefCutoff) continue;
      alpha[i] = new_alpha;
      max_update = std::max(max_update, std::abs(delta));
      for (std::size_t j = 0; j < n; ++j) {
        margin[j] += delta * y[i] * y[j] * gram[i * n + j];
      }
    }
    if (max_update < config_.tolerance) break;
  }

  std::vector<double> dual_coef(n);
  for (std::size_t i = 0; i < n; ++i) dual_coef[i] = alpha[i] * y[i];
  StoreSupportVectors(scaled, dual_coef);
  // Degenerate single-class fit: keep one zero-coefficient "support
  // vector" so Decision() stays callable and predicts the majority side.
  if (coef_.empty()) {
    coef_.push_back(y[0] * kCoefCutoff * 2);
    const auto row = scaled.Row(0);
    sv_.assign(row.begin(), row.end());
  }
}

double SvmClassifier::PredictProb(std::span<const double> x) const {
  return common::Sigmoid(2.0 * Decision(x));
}

void SvmRegressor::Fit(const Dataset& data) {
  GAUGUR_CHECK(data.NumRows() >= 2);
  scaler_.Fit(data);
  const Dataset scaled = scaler_.TransformDataset(data);
  const std::size_t n = scaled.NumRows();
  effective_gamma_ = config_.gamma > 0.0
                         ? config_.gamma
                         : 1.0 / static_cast<double>(scaled.NumFeatures());

  const std::vector<double> gram = BuildGram(scaled);
  // beta_i = alpha_i - alpha_i^* in [-C, C]; objective
  //   1/2 b'Kb - b'y + eps * |b|_1.
  std::vector<double> beta(n, 0.0);
  std::vector<double> f(n, 0.0);  // f_i = sum_j beta_j K_ij

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  common::Rng rng(config_.seed);

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.Shuffle(order);
    double max_update = 0.0;
    for (std::size_t i : order) {
      const double kii = gram[i * n + i];
      if (kii <= 0.0) continue;
      // Minimize in beta_i alone: 1/2 kii b^2 - r b + eps |b|, where
      // r = y_i - (f_i - beta_i * kii) is the residual excluding i.
      const double r = scaled.Target(i) - (f[i] - beta[i] * kii);
      double new_beta = 0.0;
      if (r > config_.epsilon) {
        new_beta = (r - config_.epsilon) / kii;
      } else if (r < -config_.epsilon) {
        new_beta = (r + config_.epsilon) / kii;
      }
      new_beta = std::clamp(new_beta, -config_.c, config_.c);
      const double delta = new_beta - beta[i];
      if (std::abs(delta) < kCoefCutoff) continue;
      beta[i] = new_beta;
      max_update = std::max(max_update, std::abs(delta));
      for (std::size_t j = 0; j < n; ++j) {
        f[j] += delta * gram[i * n + j];
      }
    }
    if (max_update < config_.tolerance) break;
  }

  StoreSupportVectors(scaled, beta);
  if (coef_.empty()) {
    // All targets inside the epsilon tube around zero: predict constant 0
    // via a single null support vector.
    coef_.push_back(kCoefCutoff * 2);
    const auto row = scaled.Row(0);
    sv_.assign(row.begin(), row.end());
  }
}

double SvmRegressor::Predict(std::span<const double> x) const {
  return Decision(x);
}

}  // namespace gaugur::ml
