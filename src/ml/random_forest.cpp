#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gaugur::ml {

namespace {

int ResolveMaxFeatures(int requested, std::size_t num_features,
                       SplitCriterion criterion) {
  if (requested > 0) return requested;
  const double d = static_cast<double>(num_features);
  const double def = criterion == SplitCriterion::kGini
                         ? std::sqrt(d)
                         : std::max(1.0, d / 3.0);
  return std::max(1, static_cast<int>(def));
}

void FitForest(const Dataset& data, const ForestConfig& config,
               SplitCriterion criterion, std::vector<TreeModel>& trees) {
  GAUGUR_CHECK(data.NumRows() >= 2);
  GAUGUR_CHECK(config.num_trees >= 1);
  GAUGUR_CHECK(config.bootstrap_fraction > 0.0 &&
               config.bootstrap_fraction <= 1.0);

  TreeConfig tree_config;
  tree_config.criterion = criterion;
  tree_config.max_depth = config.max_depth;
  tree_config.min_samples_leaf = config.min_samples_leaf;
  tree_config.max_features =
      ResolveMaxFeatures(config.max_features, data.NumFeatures(), criterion);

  const std::size_t n = data.NumRows();
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.bootstrap_fraction *
                                  static_cast<double>(n)));

  obs::ScopedSpan fit_span("ml.FitForest");
  static obs::Counter& forest_trees =
      obs::Registry::Global().GetCounter("ml.forest_trees_fit");
  trees.assign(static_cast<std::size_t>(config.num_trees), TreeModel{});
  auto fit_one = [&](std::size_t t) {
    forest_trees.Add(1);
    // Per-tree RNG derived deterministically from the forest seed.
    common::Rng rng(config.seed + 0x9e3779b97f4a7c15ULL * (t + 1));
    std::vector<std::size_t> rows(sample_size);
    for (auto& r : rows) {
      r = static_cast<std::size_t>(rng.UniformInt(n));
    }
    TreeConfig tc = tree_config;
    tc.seed = rng.Next();
    trees[t] = TreeModel(tc);
    trees[t].Fit(data, rows, data.Targets());
  };

  if (config.parallel_fit) {
    common::ThreadPool::Global().ParallelFor(0, trees.size(), fit_one);
  } else {
    for (std::size_t t = 0; t < trees.size(); ++t) fit_one(t);
  }
}

/// Mean of the trees' predictions via the flattened kernel (the scalar
/// batch-of-one: same tree-order accumulation as the batch path).
double ForestPredict(const FlatForest& flat, std::span<const double> x) {
  return flat.PredictRowSum(x) / static_cast<double>(flat.NumTrees());
}

void ForestPredictBatch(const FlatForest& flat, MatrixView x,
                        std::span<double> out) {
  GAUGUR_CHECK(out.size() == x.rows);
  std::fill(out.begin(), out.end(), 0.0);
  flat.AccumulateBatch(x, out, 1.0);
  const double count = static_cast<double>(flat.NumTrees());
  for (double& v : out) v /= count;
}

}  // namespace

void RandomForestRegressor::Fit(const Dataset& data) {
  FitForest(data, config_, SplitCriterion::kMse, trees_);
  RebuildKernel();
}

double RandomForestRegressor::Predict(std::span<const double> x) const {
  return ForestPredict(flat_, x);
}

void RandomForestRegressor::PredictBatch(MatrixView x,
                                         std::span<double> out) const {
  ForestPredictBatch(flat_, x, out);
}

void RandomForestRegressor::RebuildKernel() {
  BuildFlatForest(trees_, flat_);
}

void RandomForestClassifier::Fit(const Dataset& data) {
  FitForest(data, config_, SplitCriterion::kGini, trees_);
  RebuildKernel();
}

double RandomForestClassifier::PredictProb(std::span<const double> x) const {
  return ForestPredict(flat_, x);
}

void RandomForestClassifier::PredictProbBatch(MatrixView x,
                                              std::span<double> out) const {
  ForestPredictBatch(flat_, x, out);
}

void RandomForestClassifier::RebuildKernel() {
  BuildFlatForest(trees_, flat_);
}

}  // namespace gaugur::ml
