#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "ml/factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gaugur::ml {

namespace {

struct BoostMetrics {
  obs::Counter& stages =
      obs::Registry::Global().GetCounter("ml.boost_stages");
  obs::Histogram& stage_us =
      obs::Registry::Global().GetHistogram("ml.boost_stage_us");

  static BoostMetrics& Get() {
    static BoostMetrics metrics;
    return metrics;
  }
};

TreeConfig StageTreeConfig(const BoostConfig& config, std::uint64_t seed) {
  TreeConfig tc;
  tc.criterion = SplitCriterion::kMse;  // stages regress on residuals
  tc.max_depth = config.max_depth;
  tc.min_samples_leaf = config.min_samples_leaf;
  tc.seed = seed;
  return tc;
}

std::vector<std::size_t> StageRows(std::size_t n, double subsample,
                                   common::Rng& rng) {
  if (subsample >= 1.0) {
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    return rows;
  }
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(subsample * static_cast<double>(n)));
  return rng.SampleWithoutReplacement(n, k);
}

}  // namespace

void GradientBoostedRegressor::Fit(const Dataset& data) {
  GAUGUR_CHECK(data.NumRows() >= 2);
  GAUGUR_CHECK(config_.num_stages >= 1);
  GAUGUR_CHECK(config_.learning_rate > 0.0);
  const std::size_t n = data.NumRows();
  common::Rng rng(config_.seed);

  double sum = 0.0;
  for (double y : data.Targets()) sum += y;
  base_prediction_ = sum / static_cast<double>(n);

  std::vector<double> prediction(n, base_prediction_);
  std::vector<double> residual(n);
  stages_.clear();
  flat_.Clear();
  stages_.reserve(static_cast<std::size_t>(config_.num_stages));

  obs::ScopedSpan fit_span("ml.GradientBoostedRegressor.Fit");
  for (int stage = 0; stage < config_.num_stages; ++stage) {
    obs::ScopedTimer stage_timer(BoostMetrics::Get().stage_us);
    BoostMetrics::Get().stages.Add(1);
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = data.Target(i) - prediction[i];
    }
    const auto rows = StageRows(n, config_.subsample, rng);
    TreeModel tree(StageTreeConfig(config_, rng.Next()));
    tree.Fit(data, rows, residual);
    // Flatten the stage immediately and advance the training predictions
    // through the batch kernel: same `out += lr * leaf` update, one
    // cache-resident pass instead of n pointer-chasing descents.
    flat_.Add(tree);
    flat_.AccumulateTreeBatch(flat_.NumTrees() - 1, data.Matrix(),
                              prediction, config_.learning_rate);
    stages_.push_back(std::move(tree));
  }
  // Each Add above invalidated the quantized tables; build them once
  // now that the ensemble is final.
  flat_.FinalizeQuantized();
}

double GradientBoostedRegressor::Predict(std::span<const double> x) const {
  GAUGUR_CHECK_MSG(!stages_.empty(), "Predict before Fit");
  double value = base_prediction_;
  for (std::size_t t = 0; t < flat_.NumTrees(); ++t) {
    value += config_.learning_rate * flat_.PredictTree(t, x);
  }
  return value;
}

void GradientBoostedRegressor::PredictBatch(MatrixView x,
                                            std::span<double> out) const {
  GAUGUR_CHECK_MSG(!stages_.empty(), "Predict before Fit");
  GAUGUR_CHECK(out.size() == x.rows);
  std::fill(out.begin(), out.end(), base_prediction_);
  flat_.AccumulateBatch(x, out, config_.learning_rate);
}

void GradientBoostedRegressor::RebuildKernel() {
  BuildFlatForest(stages_, flat_);
}

void GradientBoostedClassifier::Fit(const Dataset& data) {
  GAUGUR_CHECK(data.NumRows() >= 2);
  const std::size_t n = data.NumRows();
  common::Rng rng(config_.seed);

  double positives = 0.0;
  for (double y : data.Targets()) {
    GAUGUR_CHECK_MSG(y == 0.0 || y == 1.0, "labels must be 0/1");
    positives += y;
  }
  // Prior log-odds, clamped away from degenerate all-one/all-zero cases.
  const double p0 = std::clamp(positives / static_cast<double>(n), 1e-4,
                               1.0 - 1e-4);
  base_log_odds_ = std::log(p0 / (1.0 - p0));

  std::vector<double> log_odds(n, base_log_odds_);
  std::vector<double> gradient(n);
  std::vector<double> prob(n);
  stages_.clear();
  flat_.Clear();
  stages_.reserve(static_cast<std::size_t>(config_.num_stages));

  obs::ScopedSpan fit_span("ml.GradientBoostedClassifier.Fit");
  for (int stage = 0; stage < config_.num_stages; ++stage) {
    obs::ScopedTimer stage_timer(BoostMetrics::Get().stage_us);
    BoostMetrics::Get().stages.Add(1);
    for (std::size_t i = 0; i < n; ++i) {
      prob[i] = common::Sigmoid(log_odds[i]);
      gradient[i] = data.Target(i) - prob[i];
    }
    const auto rows = StageRows(n, config_.subsample, rng);
    // Newton leaf update: sum(y - p) / sum(p(1-p)) over the leaf's rows.
    auto newton_leaf = [&](std::span<const std::size_t> leaf_rows) {
      double num = 0.0, den = 0.0;
      for (std::size_t r : leaf_rows) {
        num += gradient[r];
        den += prob[r] * (1.0 - prob[r]);
      }
      if (den < 1e-10) return 0.0;
      // Standard clip keeps single-stage jumps bounded.
      return std::clamp(num / den, -4.0, 4.0);
    };
    TreeModel tree(StageTreeConfig(config_, rng.Next()));
    tree.Fit(data, rows, gradient, newton_leaf);
    flat_.Add(tree);
    flat_.AccumulateTreeBatch(flat_.NumTrees() - 1, data.Matrix(), log_odds,
                              config_.learning_rate);
    stages_.push_back(std::move(tree));
  }
  // Each Add above invalidated the quantized tables; build them once
  // now that the ensemble is final.
  flat_.FinalizeQuantized();
}

double GradientBoostedClassifier::LogOdds(std::span<const double> x) const {
  GAUGUR_CHECK_MSG(!stages_.empty(), "Predict before Fit");
  double value = base_log_odds_;
  for (std::size_t t = 0; t < flat_.NumTrees(); ++t) {
    value += config_.learning_rate * flat_.PredictTree(t, x);
  }
  return value;
}

double GradientBoostedClassifier::PredictProb(
    std::span<const double> x) const {
  return common::Sigmoid(LogOdds(x));
}

void GradientBoostedClassifier::PredictProbBatch(
    MatrixView x, std::span<double> out) const {
  GAUGUR_CHECK_MSG(!stages_.empty(), "Predict before Fit");
  GAUGUR_CHECK(out.size() == x.rows);
  std::fill(out.begin(), out.end(), base_log_odds_);
  flat_.AccumulateBatch(x, out, config_.learning_rate);
  for (double& v : out) v = common::Sigmoid(v);
}

void GradientBoostedClassifier::RebuildKernel() {
  BuildFlatForest(stages_, flat_);
}

}  // namespace gaugur::ml
