#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace gaugur::ml {

namespace {

/// Tree-training telemetry. Split evaluations are accumulated in a plain
/// local during Fit and flushed once per tree — the split search is far
/// too hot for per-candidate atomics.
struct TreeMetrics {
  obs::Counter& tree_fits =
      obs::Registry::Global().GetCounter("ml.tree_fits");
  obs::Counter& split_evaluations =
      obs::Registry::Global().GetCounter("ml.split_evaluations");
  obs::Counter& tree_nodes =
      obs::Registry::Global().GetCounter("ml.tree_nodes");
  obs::Histogram& tree_fit_us =
      obs::Registry::Global().GetHistogram("ml.tree_fit_us");

  static TreeMetrics& Get() {
    static TreeMetrics metrics;
    return metrics;
  }
};

/// Node impurity * count ("weighted impurity"): sum of squared deviations
/// for MSE; count * gini for classification. Only differences of this
/// quantity matter for split selection.
double WeightedImpurity(SplitCriterion criterion, double sum, double sum_sq,
                        double count) {
  if (count <= 0.0) return 0.0;
  if (criterion == SplitCriterion::kMse) {
    return sum_sq - sum * sum / count;
  }
  // Gini with binary targets: sum == positive count.
  const double p = sum / count;
  return count * 2.0 * p * (1.0 - p);
}

/// Presorted split finder: one index array per feature, each holding the
/// same multiset of sample slots ordered by that feature's value. Nodes
/// own aligned [begin, end) ranges of every array; a split stably
/// partitions each array once (O(n * d) per node) instead of re-sorting
/// (O(n log n * d)), which is the classic presort CART optimization and
/// makes gradient boosting ~10x faster at our training sizes.
class PresortedBuilder {
 public:
  PresortedBuilder(const Dataset& data, std::span<const std::size_t> rows,
                   std::span<const double> targets)
      : data_(data), targets_(targets), num_rows_(rows.size()) {
    // "Slots" identify samples; bootstrap duplicates get distinct slots.
    slot_row_.assign(rows.begin(), rows.end());
    const std::size_t d = data.NumFeatures();
    order_.resize(d);
    for (std::size_t f = 0; f < d; ++f) {
      auto& ord = order_[f];
      ord.resize(num_rows_);
      std::iota(ord.begin(), ord.end(), std::uint32_t{0});
      std::sort(ord.begin(), ord.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return Value(a, f) < Value(b, f);
                });
    }
    is_left_.resize(num_rows_);
    scratch_.resize(num_rows_);
  }

  double Value(std::uint32_t slot, std::size_t feature) const {
    return data_.Row(slot_row_[slot])[feature];
  }
  double Target(std::uint32_t slot) const {
    return targets_[slot_row_[slot]];
  }
  std::size_t RowOf(std::uint32_t slot) const { return slot_row_[slot]; }

  std::span<const std::uint32_t> Slice(std::size_t feature,
                                       std::size_t begin,
                                       std::size_t end) const {
    return {order_[feature].data() + begin, end - begin};
  }

  /// Stably partitions every feature's [begin, end) range so slots
  /// satisfying value(split_feature) <= threshold come first. Returns the
  /// boundary offset.
  std::size_t Partition(std::size_t begin, std::size_t end,
                        int split_feature, double threshold) {
    const auto f = static_cast<std::size_t>(split_feature);
    std::size_t left_count = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t slot = order_[f][i];
      const bool left = Value(slot, f) <= threshold;
      is_left_[slot] = left;
      left_count += left ? 1 : 0;
    }
    const std::size_t mid = begin + left_count;
    for (auto& ord : order_) {
      std::size_t lo = begin;
      std::size_t hi = mid;
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t slot = ord[i];
        scratch_[is_left_[slot] ? lo++ : hi++] = slot;
      }
      std::copy(scratch_.begin() + static_cast<std::ptrdiff_t>(begin),
                scratch_.begin() + static_cast<std::ptrdiff_t>(end),
                ord.begin() + static_cast<std::ptrdiff_t>(begin));
    }
    return mid;
  }

  std::size_t NumRowsTotal() const { return num_rows_; }

 private:
  const Dataset& data_;
  std::span<const double> targets_;
  std::size_t num_rows_;
  std::vector<std::size_t> slot_row_;
  std::vector<std::vector<std::uint32_t>> order_;  // per feature
  std::vector<char> is_left_;                      // indexed by slot
  std::vector<std::uint32_t> scratch_;
};

struct SplitResult {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

}  // namespace

void TreeModel::Fit(const Dataset& data) {
  std::vector<std::size_t> rows(data.NumRows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  Fit(data, rows, data.Targets());
}

void TreeModel::Fit(const Dataset& data, std::span<const std::size_t> rows,
                    std::span<const double> targets,
                    const LeafValueFn& leaf_value) {
  GAUGUR_CHECK(!rows.empty());
  GAUGUR_CHECK(targets.size() == data.NumRows());
  obs::ScopedTimer fit_timer(TreeMetrics::Get().tree_fit_us);
  std::uint64_t split_evals = 0;
  nodes_.clear();

  const std::size_t num_features = data.NumFeatures();
  common::Rng rng(config_.seed);
  PresortedBuilder builder(data, rows, targets);

  struct WorkItem {
    int node;
    int depth;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<WorkItem> stack;

  auto make_leaf = [&](int node_idx, std::size_t begin, std::size_t end) {
    TreeNode& node = nodes_[static_cast<std::size_t>(node_idx)];
    node.feature = -1;
    // Any feature's slice lists the node's slots.
    const auto slots = builder.Slice(0, begin, end);
    if (leaf_value) {
      std::vector<std::size_t> leaf_rows;
      leaf_rows.reserve(slots.size());
      for (std::uint32_t s : slots) leaf_rows.push_back(builder.RowOf(s));
      node.value = leaf_value(leaf_rows);
    } else {
      double sum = 0.0;
      for (std::uint32_t s : slots) sum += builder.Target(s);
      node.value = sum / static_cast<double>(slots.size());
    }
  };

  nodes_.emplace_back();
  nodes_[0].num_samples = builder.NumRowsTotal();
  stack.push_back({0, 0, 0, builder.NumRowsTotal()});

  std::vector<int> feature_order(num_features);
  std::iota(feature_order.begin(), feature_order.end(), 0);

  while (!stack.empty()) {
    const WorkItem item = stack.back();
    stack.pop_back();
    const std::size_t n = item.end - item.begin;
    nodes_[static_cast<std::size_t>(item.node)].num_samples = n;

    // Stopping conditions: depth, size, or pure targets.
    bool pure = true;
    {
      const auto slots = builder.Slice(0, item.begin, item.end);
      const double first_target = builder.Target(slots[0]);
      for (std::size_t i = 1; i < slots.size() && pure; ++i) {
        pure = builder.Target(slots[i]) == first_target;
      }
    }
    if (item.depth >= config_.max_depth || n < config_.min_samples_split ||
        pure) {
      make_leaf(item.node, item.begin, item.end);
      continue;
    }

    // Feature subsampling (random forest style).
    std::size_t features_to_try = num_features;
    if (config_.max_features > 0 &&
        static_cast<std::size_t>(config_.max_features) < num_features) {
      features_to_try = static_cast<std::size_t>(config_.max_features);
      for (std::size_t i = 0; i < features_to_try; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.UniformInt(num_features - i));
        std::swap(feature_order[i], feature_order[j]);
      }
    }

    double total_sum = 0.0, total_sum_sq = 0.0;
    for (std::uint32_t s : builder.Slice(0, item.begin, item.end)) {
      const double t = builder.Target(s);
      total_sum += t;
      total_sum_sq += t * t;
    }
    const double parent_impurity = WeightedImpurity(
        config_.criterion, total_sum, total_sum_sq, static_cast<double>(n));

    SplitResult best;
    for (std::size_t fi = 0; fi < features_to_try; ++fi) {
      const int f = feature_order[fi];
      const auto slice =
          builder.Slice(static_cast<std::size_t>(f), item.begin, item.end);
      const double first_value = builder.Value(slice.front(),
                                               static_cast<std::size_t>(f));
      const double last_value = builder.Value(slice.back(),
                                              static_cast<std::size_t>(f));
      if (first_value == last_value) continue;  // constant feature

      double left_sum = 0.0, left_sum_sq = 0.0;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const double t = builder.Target(slice[i]);
        left_sum += t;
        left_sum_sq += t * t;
        const double value =
            builder.Value(slice[i], static_cast<std::size_t>(f));
        const double next_value =
            builder.Value(slice[i + 1], static_cast<std::size_t>(f));
        if (value == next_value) continue;  // no cut between equal values
        const std::size_t left_n = i + 1;
        const std::size_t right_n = n - left_n;
        if (left_n < config_.min_samples_leaf ||
            right_n < config_.min_samples_leaf) {
          continue;
        }
        ++split_evals;
        const double impurity =
            WeightedImpurity(config_.criterion, left_sum, left_sum_sq,
                             static_cast<double>(left_n)) +
            WeightedImpurity(config_.criterion, total_sum - left_sum,
                             total_sum_sq - left_sum_sq,
                             static_cast<double>(right_n));
        const double gain = parent_impurity - impurity;
        if (gain > best.gain + 1e-12) {
          best.gain = gain;
          best.feature = f;
          best.threshold = 0.5 * (value + next_value);
        }
      }
    }

    if (best.feature < 0) {
      make_leaf(item.node, item.begin, item.end);
      continue;
    }

    const std::size_t mid =
        builder.Partition(item.begin, item.end, best.feature, best.threshold);
    GAUGUR_CHECK(mid > item.begin && mid < item.end);

    const int left_idx = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    const int right_idx = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    TreeNode& parent = nodes_[static_cast<std::size_t>(item.node)];
    parent.feature = best.feature;
    parent.threshold = best.threshold;
    parent.left = left_idx;
    parent.right = right_idx;
    stack.push_back({left_idx, item.depth + 1, item.begin, mid});
    stack.push_back({right_idx, item.depth + 1, mid, item.end});
  }

  if (obs::Enabled()) {
    TreeMetrics& metrics = TreeMetrics::Get();
    metrics.tree_fits.Add(1);
    metrics.split_evaluations.Add(split_evals);
    metrics.tree_nodes.Add(nodes_.size());
  }
}

double TreeModel::Predict(std::span<const double> x) const {
  GAUGUR_CHECK_MSG(IsFitted(), "Predict before Fit");
  int idx = 0;
  for (;;) {
    const TreeNode& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.feature < 0) return node.value;
    GAUGUR_CHECK(static_cast<std::size_t>(node.feature) < x.size());
    idx = x[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
}

int TreeModel::Depth() const {
  if (nodes_.empty()) return 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  int depth = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const TreeNode& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.feature >= 0) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return depth;
}

std::size_t TreeModel::NumLeaves() const {
  std::size_t leaves = 0;
  for (const auto& node : nodes_) {
    if (node.feature < 0) ++leaves;
  }
  return leaves;
}

}  // namespace gaugur::ml
