// Model serialization: a line-oriented text format so models trained
// offline (the expensive step) can be shipped to the online prediction
// service. Every learner round-trips exactly — predictions from a loaded
// model are bit-identical to the original's.
//
// Format: one "<key> <values...>" record per line, nested blocks wrapped
// in "begin <type>" / "end" lines. Doubles are written with max_digits10
// so the round-trip is lossless.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/model.h"
#include "ml/random_forest.h"
#include "ml/scaler.h"
#include "ml/svm.h"

namespace gaugur::ml {

// ---- Streaming API (one model per call; composable).

void SaveTree(std::ostream& os, const TreeModel& tree);
TreeModel LoadTree(std::istream& is);

void SaveScaler(std::ostream& os, const StandardScaler& scaler);
StandardScaler LoadScaler(std::istream& is);

// ---- Regressor / Classifier round-trips by dynamic type. Supported:
// DecisionTree*, RandomForest*, GradientBoosted*, Svm*. CHECK-fails on
// unknown concrete types.

void SaveRegressor(std::ostream& os, const Regressor& model);
std::unique_ptr<Regressor> LoadRegressor(std::istream& is);

void SaveClassifier(std::ostream& os, const Classifier& model);
std::unique_ptr<Classifier> LoadClassifier(std::istream& is);

// ---- File convenience wrappers; return false on I/O failure.

bool SaveRegressorToFile(const std::string& path, const Regressor& model);
std::unique_ptr<Regressor> LoadRegressorFromFile(const std::string& path);

bool SaveClassifierToFile(const std::string& path, const Classifier& model);
std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path);

}  // namespace gaugur::ml
