// Contiguous inference kernel for CART tree ensembles.
//
// TreeModel stores an AoS node vector that is convenient to build and
// serialize but slow to query: every ensemble prediction pointer-chases
// 24-byte nodes scattered per tree, and the left-or-right choice compiles
// to a data-dependent branch that mispredicts roughly half the time on
// real feature data. FlatForest re-lays fitted trees into one contiguous
// array shared by the whole ensemble and traverses it without branches:
//
//  * nodes are renumbered breadth-first so each split's two children sit
//    in adjacent slots, collapsing the child choice to integer
//    arithmetic: `idx = child + (x[feature] > threshold)` — a comisd/seta
//    data dependency instead of a mispredicting jump;
//  * each node packs {threshold, feature, child} into 16 bytes, so one
//    descent step touches a single node cache line plus the row value it
//    compares against; leaf values live in a separate array indexed by
//    the final position;
//  * leaves self-loop (`child` points at the leaf itself, threshold
//    +inf so the step adds 0), which makes the descent a fixed-count
//    loop per tree level — no per-node leaf test, no early exits;
//  * batch entry points iterate trees-outer / rows-inner so one tree's
//    nodes stay hot in cache across the whole batch, with the rows
//    unrolled four wide for instruction-level parallelism.
//
// Accumulation order matches the scalar ensemble loops exactly (per row:
// tree 0, tree 1, ... with the same `out += scale * leaf` operation), so
// batch results are bit-identical to row-by-row Predict — the property
// the batch-equivalence tests pin down.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace gaugur::ml {

class TreeModel;

class FlatForest {
 public:
  /// Appends a fitted tree to the ensemble.
  void Add(const TreeModel& tree);

  void Clear();

  bool Empty() const { return roots_.empty(); }
  std::size_t NumTrees() const { return roots_.size(); }
  std::size_t NumNodes() const { return nodes_.size(); }

  /// Largest feature index any node compares on; batch calls CHECK the
  /// row width against this once instead of per node.
  std::size_t MaxFeature() const { return max_feature_; }

  /// Leaf value of tree `t` for one row (the batch-of-one scalar path).
  double PredictTree(std::size_t t, std::span<const double> x) const;

  /// Sum of all trees' leaf values for one row, accumulated in tree
  /// order (matches the scalar ensemble loops bit for bit).
  double PredictRowSum(std::span<const double> x) const;

  /// out[i] += scale * tree_t(x.Row(i)) for every row.
  void AccumulateTreeBatch(std::size_t t, MatrixView x,
                           std::span<double> out, double scale) const;

  /// Applies AccumulateTreeBatch for every tree in order: trees outer,
  /// rows inner.
  void AccumulateBatch(MatrixView x, std::span<double> out,
                       double scale) const;

 private:
  /// One packed split/leaf record. `child` is the index of the left
  /// child; the right child is `child + 1` (BFS pair layout). Leaves
  /// self-loop: child == own index, threshold == +inf.
  struct alignas(16) Node {
    double threshold = 0.0;
    std::int32_t feature = 0;  // leaves use feature 0
    std::int32_t child = 0;
  };
  static_assert(sizeof(Node) == 16);

  void CheckWidth(std::size_t cols) const;

  std::vector<Node> nodes_;
  std::vector<double> value_;        // leaf value; 0 for splits
  std::vector<std::int32_t> roots_;  // per-tree root node index
  std::vector<std::int32_t> levels_; // per-tree descent count
  std::size_t max_feature_ = 0;
};

}  // namespace gaugur::ml
