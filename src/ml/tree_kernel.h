// Contiguous inference kernel for CART tree ensembles.
//
// TreeModel stores an AoS node vector that is convenient to build and
// serialize but slow to query: every ensemble prediction pointer-chases
// 24-byte nodes scattered per tree, and the left-or-right choice compiles
// to a data-dependent branch that mispredicts roughly half the time on
// real feature data. FlatForest re-lays fitted trees into one contiguous
// array shared by the whole ensemble and traverses it without branches:
//
//  * nodes are renumbered **level by level**: all nodes of descent depth
//    d of a tree occupy one contiguous segment (LevelSpan), each split's
//    two children sit in adjacent slots of the next segment, and leaves
//    that end shallower than the tree's depth are chained downward (one
//    16-byte copy per deeper level, threshold +inf so the step adds 0).
//    Every root-to-leaf walk is therefore exactly the same fixed number
//    of steps, and step d of a whole row block touches only level d's
//    segment — one contiguous stream instead of a scatter across the
//    tree;
//  * the child choice collapses to integer arithmetic:
//    `idx = child + (x[feature] > threshold)` — a comisd/seta data
//    dependency instead of a mispredicting jump;
//  * each node packs {threshold, feature, child} into 16 bytes, so one
//    descent step touches a single node cache line plus the row value it
//    compares against; leaf values live in a separate array indexed by
//    the final position;
//  * batch entry points iterate trees-outer / rows-inner so one tree's
//    levels stay hot in cache across the whole batch, with the rows
//    processed in blocks of independent descents for instruction-level
//    parallelism.
//
// The block descent has three interchangeable implementations selected
// once at startup (AVX2 gathers over 64-row blocks, SSE compares over
// 16-row blocks, portable 4-row scalar unroll — see SimdTier below;
// the SIMD blocks are wide to keep many independent descent chains in
// flight, hiding each chain's serial gather -> compare -> advance
// latency). All
// tiers execute the identical recurrence with the identical float
// compare (`x > threshold`; NaN compares false, so every kernel sends a
// NaN feature down the left child — note TreeModel::Predict's
// `x <= threshold` form would send it right, which is why the ensembles
// route their scalar paths through FlatForest too) and the identical
// `out += scale * leaf` accumulation (separate multiply and add, never
// an FMA), so predictions are bit-identical across tiers and match the
// scalar ensemble loops exactly (per row: tree 0, tree 1, ...) — the
// property the batch-equivalence and simd_kernel test suites pin down,
// and the contract the PredictionCache and obs::ModelMonitor depend on
// (a memoized or audited value never depends on which kernel produced
// it).
//
// On top of the float layout sit two independent accelerations, both
// bound by the same bit-identicality contract (see docs/inference.md):
//
//  * a **quantized** descent (FinalizeQuantized): every distinct split
//    threshold of feature f becomes a bin edge, a batch's feature
//    values are binned once up front (uint16 bin ids), and each node
//    shrinks to 8 bytes of per-level SoA int32 arrays —
//    {feature, threshold-rank} packed in one word plus the child index
//    in another — so a cache line holds 8 nodes instead of 4 and the
//    AVX2 kernel descends 8 rows per vector with 32-bit gathers instead
//    of 4 with 64-bit ones. Binning is exact by construction:
//    thresholds ARE the bin edges, so `bin(x) > rank(t)` decides
//    exactly like `x > t` (NaN bins to 0 and still descends left; leaf
//    records carry rank 0xFFFF, which no bin id reaches, so their step
//    still adds 0). Quantized results are therefore EXPECT_EQ-equal to
//    the float kernels, not merely close;
//  * a **multi-core** batch path (AccumulateBatchMt): trees fan out
//    over common::ThreadPool workers, each tree's per-row contribution
//    `scale * leaf` is staged in a scratch slab, and a deterministic
//    tree-order reduction replays the exact addition sequence of the
//    sequential loop — so results are bit-identical for every worker
//    count (1, 2, N), and identical to the single-threaded path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "ml/dataset.h"

namespace gaugur::common {
class ThreadPool;
}

namespace gaugur::ml {

class TreeModel;

/// Descent-kernel implementation tiers, ordered weakest to strongest.
/// Dispatch picks the strongest tier the build, the CPU, and the
/// GAUGUR_SIMD environment cap (`off`/`scalar`, `sse`, `avx2`) all
/// allow. Every tier returns bit-identical predictions.
enum class SimdTier : int { kScalar = 0, kSse = 1, kAvx2 = 2 };

const char* SimdTierName(SimdTier tier);

/// Maps a GAUGUR_SIMD-style string to the tier it caps dispatch at:
/// "off"/"scalar" -> kScalar, "sse" -> kSse, "avx2" -> kAvx2. Unknown or
/// empty values leave dispatch uncapped (returns `fallback`).
SimdTier SimdTierFromString(const char* value, SimdTier fallback);

/// One packed split/leaf record. `child` is the index of the left child;
/// the right child is `child + 1` (children adjacent in the next level's
/// segment). Leaves carry threshold == +inf so the descent step adds 0:
/// at the tree's last level they self-loop (child == own index), at
/// shallower levels `child` points at the leaf's copy one level down.
struct alignas(16) FlatNode {
  double threshold = 0.0;
  std::int32_t feature = 0;  // leaves use feature 0
  std::int32_t child = 0;
};
static_assert(sizeof(FlatNode) == 16);

class FlatForest {
 public:
  /// Appends a fitted tree to the ensemble.
  void Add(const TreeModel& tree);

  void Clear();

  bool Empty() const { return roots_.empty(); }
  std::size_t NumTrees() const { return roots_.size(); }
  std::size_t NumNodes() const { return nodes_.size(); }

  /// Largest feature index any node compares on; batch calls CHECK the
  /// row width against this once instead of per node.
  std::size_t MaxFeature() const { return max_feature_; }

  /// The packed node array in level order; read-only structural view for
  /// tests and inspection tooling.
  std::span<const FlatNode> Nodes() const { return nodes_; }

  /// Number of node levels of tree `t` (tree depth); descents take one
  /// step fewer.
  std::int32_t NumLevels(std::size_t t) const;

  /// Half-open node-index span [begin, end) of descent level `d` of
  /// tree `t`: the contiguous segment a row block's step `d` reads.
  std::pair<std::int32_t, std::int32_t> LevelSpan(std::size_t t,
                                                  std::int32_t d) const;

  /// Leaf value of tree `t` for one row (the batch-of-one scalar path).
  double PredictTree(std::size_t t, std::span<const double> x) const;

  /// Sum of all trees' leaf values for one row, accumulated in tree
  /// order (matches the scalar ensemble loops bit for bit).
  double PredictRowSum(std::span<const double> x) const;

  /// out[i] += scale * tree_t(x.Row(i)) for every row, via ActiveTier().
  void AccumulateTreeBatch(std::size_t t, MatrixView x,
                           std::span<double> out, double scale) const;

  /// AccumulateTreeBatch pinned to one kernel tier (<= SupportedTier()),
  /// ignoring ActiveTier(). Bench/test hook for variant comparisons.
  void AccumulateTreeBatchTier(std::size_t t, MatrixView x,
                               std::span<double> out, double scale,
                               SimdTier tier) const;

  /// Applies AccumulateTreeBatch for every tree in order: trees outer,
  /// rows inner. Dispatches to the quantized descent when the forest is
  /// finalized and quantization is active, and to the multi-core path
  /// on large batches when parallel execution is active (both produce
  /// bit-identical results, so neither dispatch is observable in the
  /// outputs).
  void AccumulateBatch(MatrixView x, std::span<double> out,
                       double scale) const;

  /// AccumulateBatch fanned out trees-outer over `pool` via
  /// SubmitPinned. Each tree's per-row product `scale * leaf` is staged
  /// in a scratch slab and reduced in tree order, replaying the exact
  /// addition sequence of the sequential loop — results are
  /// bit-identical to AccumulateBatch for every pool size. Falls back
  /// to the sequential path when called from one of `pool`'s own
  /// workers (a shard worker's decision batch must not re-enter its own
  /// queue) or when the pool has a single worker.
  void AccumulateBatchMt(MatrixView x, std::span<double> out, double scale,
                         common::ThreadPool& pool) const;

  // --- Quantized descent -------------------------------------------

  /// Builds the quantized tables from the current trees: per-feature
  /// sorted bin edges (the distinct split thresholds) plus the packed
  /// per-level SoA node arrays. Idempotent; call after the last Add.
  /// A forest the scheme cannot represent exactly (a feature with more
  /// than 65534 distinct thresholds, or a feature index beyond 16 bits)
  /// simply leaves QuantizedBuilt() false and every batch on the float
  /// path. Compiled out (no-op) under GAUGUR_NO_QUANT.
  void FinalizeQuantized();

  /// True when FinalizeQuantized built exact tables for this forest.
  bool QuantizedBuilt() const { return quant_built_; }

  /// True when batch calls on this forest will take the quantized
  /// descent: tables built and quantization active.
  bool UsesQuantized() const { return quant_built_ && QuantizedActive(); }

  /// Whether this build carries the quantized path at all
  /// (false under -DGAUGUR_NO_QUANT=ON).
  static bool QuantizedSupported();

  /// Whether dispatch currently allows the quantized descent: the
  /// ForceQuantized override when set, else the GAUGUR_QUANT
  /// environment variable (`off`/`0`/`false` disables; default on,
  /// read once). Always false when QuantizedSupported() is false.
  static bool QuantizedActive();

  /// Process-wide dispatch override for benches and tests;
  /// std::nullopt restores automatic (env-driven) dispatch. Forcing
  /// quantization on in a GAUGUR_NO_QUANT build throws. Thread-safe
  /// (relaxed atomic); flipping it concurrently with in-flight batches
  /// just makes those batches pick either path — results are
  /// bit-identical regardless.
  static void ForceQuantized(std::optional<bool> on);

  /// Number of bin edges (distinct split thresholds) of feature `f`;
  /// bin ids for that feature range over [0, NumBinEdges(f)].
  /// Inspection hook for tests and docs tooling.
  std::size_t NumBinEdges(std::size_t f) const;

  /// The bin id the quantized descent compares for value `x` of
  /// feature `f`: the count of edges strictly below `x` (NaN -> 0).
  std::uint16_t BinValue(std::size_t f, double x) const;

  /// Bins one row-major batch into `bins` (resized to rows * cols plus
  /// two elements of gather-overread padding). Test/bench hook for the
  /// exact front half of the quantized batch path.
  void BinBatch(MatrixView x, std::vector<std::uint16_t>& bins) const;

  /// Quantized counterpart of AccumulateTreeBatchTier over a pre-binned
  /// batch; `tier` >= kAvx2 takes the 8-lane gather kernel, anything
  /// lower the portable scalar one. Requires QuantizedBuilt().
  void AccumulateTreeQuantTier(std::size_t t, const std::uint16_t* bins,
                               std::size_t rows, std::size_t cols,
                               std::span<double> out, double scale,
                               SimdTier tier) const;

  // --- Multi-core dispatch -----------------------------------------

  /// Whether AccumulateBatch may fan large batches out over the global
  /// pool: the ForceParallel override when set, else the
  /// GAUGUR_KERNEL_THREADS environment variable (`1`/`off` disables;
  /// default on, read once).
  static bool ParallelActive();

  /// Process-wide override of ParallelActive() for benches and tests;
  /// std::nullopt restores automatic dispatch.
  static void ForceParallel(std::optional<bool> on);

  /// Strongest tier this build + CPU can execute (compile-time
  /// GAUGUR_NO_SIMD gate, then CPUID).
  static SimdTier SupportedTier();

  /// Tier the batch entry points dispatch to: the ForceTier override
  /// when set, else SupportedTier() capped by the GAUGUR_SIMD
  /// environment variable (read once).
  static SimdTier ActiveTier();

  /// Process-wide dispatch override for benches and tests; `tier` must
  /// be <= SupportedTier(). std::nullopt restores automatic dispatch.
  /// Thread-safe (relaxed atomic), but flipping it concurrently with
  /// in-flight batches simply makes those batches pick either kernel —
  /// results are bit-identical regardless.
  static void ForceTier(std::optional<SimdTier> tier);

 private:
  void CheckWidth(std::size_t cols) const;

  std::vector<FlatNode> nodes_;
  std::vector<double> value_;         // leaf value; 0 for splits
  std::vector<std::int32_t> roots_;   // per-tree root node index
  std::vector<std::int32_t> levels_;  // per-tree descent count
  /// Flat list of level-segment start offsets; tree t's levels begin at
  /// level_index_[t] and segments are contiguous, so a segment's end is
  /// the next entry's start (or nodes_.size() for the very last one).
  std::vector<std::int32_t> level_base_;
  std::vector<std::int32_t> level_index_;
  std::size_t max_feature_ = 0;

  // Quantized tables (valid iff quant_built_; any Add invalidates).
  // Per-feature sorted distinct split thresholds: bin(x) for feature f
  // is the count of edges_[f] entries strictly below x.
  std::vector<std::vector<double>> edges_;
  /// The same edges flattened into one contiguous slab for the hot
  /// BinBatch sweep: feature f's slice is
  /// edge_flat_[edge_off_[f] .. edge_off_[f + 1]). One allocation keeps
  /// every per-feature slice a pointer bump apart instead of a heap
  /// object apart.
  std::vector<double> edge_flat_;
  std::vector<std::uint32_t> edge_off_;
  /// SoA node words, parallel to nodes_ (same level-contiguous index
  /// space): qmeta_[i] packs (feature << 16) | threshold_rank, with
  /// rank 0xFFFF marking a leaf record; qchild_[i] is the left-child
  /// index. 8 bytes per node -> 8 nodes per cache line.
  std::vector<std::int32_t> qmeta_;
  std::vector<std::int32_t> qchild_;
  bool quant_built_ = false;
};

}  // namespace gaugur::ml
