// Contiguous inference kernel for CART tree ensembles.
//
// TreeModel stores an AoS node vector that is convenient to build and
// serialize but slow to query: every ensemble prediction pointer-chases
// 24-byte nodes scattered per tree, and the left-or-right choice compiles
// to a data-dependent branch that mispredicts roughly half the time on
// real feature data. FlatForest re-lays fitted trees into one contiguous
// array shared by the whole ensemble and traverses it without branches:
//
//  * nodes are renumbered **level by level**: all nodes of descent depth
//    d of a tree occupy one contiguous segment (LevelSpan), each split's
//    two children sit in adjacent slots of the next segment, and leaves
//    that end shallower than the tree's depth are chained downward (one
//    16-byte copy per deeper level, threshold +inf so the step adds 0).
//    Every root-to-leaf walk is therefore exactly the same fixed number
//    of steps, and step d of a whole row block touches only level d's
//    segment — one contiguous stream instead of a scatter across the
//    tree;
//  * the child choice collapses to integer arithmetic:
//    `idx = child + (x[feature] > threshold)` — a comisd/seta data
//    dependency instead of a mispredicting jump;
//  * each node packs {threshold, feature, child} into 16 bytes, so one
//    descent step touches a single node cache line plus the row value it
//    compares against; leaf values live in a separate array indexed by
//    the final position;
//  * batch entry points iterate trees-outer / rows-inner so one tree's
//    levels stay hot in cache across the whole batch, with the rows
//    processed in blocks of independent descents for instruction-level
//    parallelism.
//
// The block descent has three interchangeable implementations selected
// once at startup (AVX2 gathers over 64-row blocks, SSE compares over
// 16-row blocks, portable 4-row scalar unroll — see SimdTier below;
// the SIMD blocks are wide to keep many independent descent chains in
// flight, hiding each chain's serial gather -> compare -> advance
// latency). All
// tiers execute the identical recurrence with the identical float
// compare (`x > threshold`; NaN compares false, so every kernel sends a
// NaN feature down the left child — note TreeModel::Predict's
// `x <= threshold` form would send it right, which is why the ensembles
// route their scalar paths through FlatForest too) and the identical
// `out += scale * leaf` accumulation (separate multiply and add, never
// an FMA), so predictions are bit-identical across tiers and match the
// scalar ensemble loops exactly (per row: tree 0, tree 1, ...) — the
// property the batch-equivalence and simd_kernel test suites pin down,
// and the contract the PredictionCache and obs::ModelMonitor depend on
// (a memoized or audited value never depends on which kernel produced
// it).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "ml/dataset.h"

namespace gaugur::ml {

class TreeModel;

/// Descent-kernel implementation tiers, ordered weakest to strongest.
/// Dispatch picks the strongest tier the build, the CPU, and the
/// GAUGUR_SIMD environment cap (`off`/`scalar`, `sse`, `avx2`) all
/// allow. Every tier returns bit-identical predictions.
enum class SimdTier : int { kScalar = 0, kSse = 1, kAvx2 = 2 };

const char* SimdTierName(SimdTier tier);

/// Maps a GAUGUR_SIMD-style string to the tier it caps dispatch at:
/// "off"/"scalar" -> kScalar, "sse" -> kSse, "avx2" -> kAvx2. Unknown or
/// empty values leave dispatch uncapped (returns `fallback`).
SimdTier SimdTierFromString(const char* value, SimdTier fallback);

/// One packed split/leaf record. `child` is the index of the left child;
/// the right child is `child + 1` (children adjacent in the next level's
/// segment). Leaves carry threshold == +inf so the descent step adds 0:
/// at the tree's last level they self-loop (child == own index), at
/// shallower levels `child` points at the leaf's copy one level down.
struct alignas(16) FlatNode {
  double threshold = 0.0;
  std::int32_t feature = 0;  // leaves use feature 0
  std::int32_t child = 0;
};
static_assert(sizeof(FlatNode) == 16);

class FlatForest {
 public:
  /// Appends a fitted tree to the ensemble.
  void Add(const TreeModel& tree);

  void Clear();

  bool Empty() const { return roots_.empty(); }
  std::size_t NumTrees() const { return roots_.size(); }
  std::size_t NumNodes() const { return nodes_.size(); }

  /// Largest feature index any node compares on; batch calls CHECK the
  /// row width against this once instead of per node.
  std::size_t MaxFeature() const { return max_feature_; }

  /// The packed node array in level order; read-only structural view for
  /// tests and inspection tooling.
  std::span<const FlatNode> Nodes() const { return nodes_; }

  /// Number of node levels of tree `t` (tree depth); descents take one
  /// step fewer.
  std::int32_t NumLevels(std::size_t t) const;

  /// Half-open node-index span [begin, end) of descent level `d` of
  /// tree `t`: the contiguous segment a row block's step `d` reads.
  std::pair<std::int32_t, std::int32_t> LevelSpan(std::size_t t,
                                                  std::int32_t d) const;

  /// Leaf value of tree `t` for one row (the batch-of-one scalar path).
  double PredictTree(std::size_t t, std::span<const double> x) const;

  /// Sum of all trees' leaf values for one row, accumulated in tree
  /// order (matches the scalar ensemble loops bit for bit).
  double PredictRowSum(std::span<const double> x) const;

  /// out[i] += scale * tree_t(x.Row(i)) for every row, via ActiveTier().
  void AccumulateTreeBatch(std::size_t t, MatrixView x,
                           std::span<double> out, double scale) const;

  /// AccumulateTreeBatch pinned to one kernel tier (<= SupportedTier()),
  /// ignoring ActiveTier(). Bench/test hook for variant comparisons.
  void AccumulateTreeBatchTier(std::size_t t, MatrixView x,
                               std::span<double> out, double scale,
                               SimdTier tier) const;

  /// Applies AccumulateTreeBatch for every tree in order: trees outer,
  /// rows inner.
  void AccumulateBatch(MatrixView x, std::span<double> out,
                       double scale) const;

  /// Strongest tier this build + CPU can execute (compile-time
  /// GAUGUR_NO_SIMD gate, then CPUID).
  static SimdTier SupportedTier();

  /// Tier the batch entry points dispatch to: the ForceTier override
  /// when set, else SupportedTier() capped by the GAUGUR_SIMD
  /// environment variable (read once).
  static SimdTier ActiveTier();

  /// Process-wide dispatch override for benches and tests; `tier` must
  /// be <= SupportedTier(). std::nullopt restores automatic dispatch.
  /// Thread-safe (relaxed atomic), but flipping it concurrently with
  /// in-flight batches simply makes those batches pick either kernel —
  /// results are bit-identical regardless.
  static void ForceTier(std::optional<SimdTier> tier);

 private:
  void CheckWidth(std::size_t cols) const;

  std::vector<FlatNode> nodes_;
  std::vector<double> value_;         // leaf value; 0 for splits
  std::vector<std::int32_t> roots_;   // per-tree root node index
  std::vector<std::int32_t> levels_;  // per-tree descent count
  /// Flat list of level-segment start offsets; tree t's levels begin at
  /// level_index_[t] and segments are contiguous, so a segment's end is
  /// the next entry's start (or nodes_.size() for the very last one).
  std::vector<std::int32_t> level_base_;
  std::vector<std::int32_t> level_index_;
  std::size_t max_feature_ = 0;
};

}  // namespace gaugur::ml
