// Gradient-boosted decision trees (Friedman 2001) — the paper's best
// performers (GBRT for regression, GBDT for classification).
//
//  * GBRT: least-squares boosting. Each stage fits a shallow CART tree to
//    the current residuals; predictions are the shrunken sum of stages.
//  * GBDT: binomial-deviance boosting on log-odds. Trees are fit to the
//    gradient residuals (y - p) and leaf values take a Newton step
//    sum(residual) / sum(p * (1 - p)).
//
// Both support stochastic boosting (row subsampling per stage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"
#include "ml/tree_kernel.h"

namespace gaugur::ml {

struct BoostConfig {
  int num_stages = 300;
  double learning_rate = 0.08;
  int max_depth = 5;
  std::size_t min_samples_leaf = 4;
  /// Row fraction sampled (without replacement) per stage; 1.0 = all.
  double subsample = 0.8;
  std::uint64_t seed = 13;
};

class GradientBoostedRegressor final : public Regressor {
 public:
  explicit GradientBoostedRegressor(BoostConfig config = {})
      : config_(config) {}

  void Fit(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  using Regressor::PredictBatch;
  void PredictBatch(MatrixView x, std::span<double> out) const override;
  std::string Name() const override { return "GBRT"; }

  std::size_t NumStages() const { return stages_.size(); }
  const BoostConfig& Config() const { return config_; }
  double BaseValue() const { return base_prediction_; }
  const std::vector<TreeModel>& Stages() const { return stages_; }

  /// The flattened (and quantization-finalized) inference kernel;
  /// read-only hook for benches and kernel-level tests.
  const FlatForest& Kernel() const { return flat_; }

  /// Reconstructs a fitted model (serialization).
  static GradientBoostedRegressor FromStages(BoostConfig config, double base,
                                             std::vector<TreeModel> stages) {
    GradientBoostedRegressor model(config);
    model.base_prediction_ = base;
    model.stages_ = std::move(stages);
    model.RebuildKernel();
    return model;
  }

 private:
  void RebuildKernel();

  BoostConfig config_;
  double base_prediction_ = 0.0;
  std::vector<TreeModel> stages_;
  FlatForest flat_;
};

class GradientBoostedClassifier final : public Classifier {
 public:
  explicit GradientBoostedClassifier(BoostConfig config = {})
      : config_(config) {}

  void Fit(const Dataset& data) override;
  double PredictProb(std::span<const double> x) const override;
  using Classifier::PredictProbBatch;
  void PredictProbBatch(MatrixView x, std::span<double> out) const override;
  std::string Name() const override { return "GBDT"; }

  std::size_t NumStages() const { return stages_.size(); }
  const BoostConfig& Config() const { return config_; }
  double BaseValue() const { return base_log_odds_; }
  const std::vector<TreeModel>& Stages() const { return stages_; }

  /// The flattened (and quantization-finalized) inference kernel;
  /// read-only hook for benches and kernel-level tests.
  const FlatForest& Kernel() const { return flat_; }

  /// Reconstructs a fitted model (serialization).
  static GradientBoostedClassifier FromStages(BoostConfig config, double base,
                                              std::vector<TreeModel> stages) {
    GradientBoostedClassifier model(config);
    model.base_log_odds_ = base;
    model.stages_ = std::move(stages);
    model.RebuildKernel();
    return model;
  }

 private:
  double LogOdds(std::span<const double> x) const;
  void RebuildKernel();

  BoostConfig config_;
  double base_log_odds_ = 0.0;
  std::vector<TreeModel> stages_;
  FlatForest flat_;
};

}  // namespace gaugur::ml
