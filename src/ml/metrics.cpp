#include "ml/metrics.h"

#include <cmath>

#include "common/check.h"

namespace gaugur::ml {

std::vector<double> RelativeErrors(std::span<const double> predicted,
                                   std::span<const double> actual) {
  GAUGUR_CHECK(predicted.size() == actual.size());
  std::vector<double> errors;
  errors.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    GAUGUR_CHECK_MSG(actual[i] != 0.0, "relative error undefined at 0");
    errors.push_back(std::abs(predicted[i] - actual[i]) /
                     std::abs(actual[i]));
  }
  return errors;
}

double MeanRelativeError(std::span<const double> predicted,
                         std::span<const double> actual) {
  const auto errors = RelativeErrors(predicted, actual);
  if (errors.empty()) return 0.0;
  double s = 0.0;
  for (double e : errors) s += e;
  return s / static_cast<double>(errors.size());
}

double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> actual) {
  GAUGUR_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    s += std::abs(predicted[i] - actual[i]);
  }
  return s / static_cast<double>(predicted.size());
}

double RootMeanSquaredError(std::span<const double> predicted,
                            std::span<const double> actual) {
  GAUGUR_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(predicted.size()));
}

double ConfusionMatrix::Accuracy() const {
  const std::size_t total = Total();
  if (total == 0) return 0.0;
  return static_cast<double>(tp + tn) / static_cast<double>(total);
}

double ConfusionMatrix::Precision() const {
  if (tp + fp == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ConfusionMatrix::Recall() const {
  if (tp + fn == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fn);
}

ConfusionMatrix ComputeConfusion(std::span<const int> predicted,
                                 std::span<const int> actual) {
  GAUGUR_CHECK(predicted.size() == actual.size());
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == 1) {
      actual[i] == 1 ? ++cm.tp : ++cm.fp;
    } else {
      actual[i] == 1 ? ++cm.fn : ++cm.tn;
    }
  }
  return cm;
}

double Accuracy(std::span<const int> predicted, std::span<const int> actual) {
  return ComputeConfusion(predicted, actual).Accuracy();
}

}  // namespace gaugur::ml
