// Per-feature standardization (zero mean, unit variance). Tree models are
// scale-invariant, but the SVMs need it; the scaler is fit on the training
// set and baked into the model so prediction inputs are raw features.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace gaugur::ml {

class StandardScaler {
 public:
  void Fit(const Dataset& data);

  bool IsFitted() const { return !mean_.empty(); }

  /// Standardizes one row into `out` (resized as needed).
  void Transform(std::span<const double> x, std::vector<double>& out) const;

  /// A fully standardized copy of `data` (targets unchanged).
  Dataset TransformDataset(const Dataset& data) const;

  const std::vector<double>& Mean() const { return mean_; }
  const std::vector<double>& Std() const { return std_; }

  /// Reconstructs a fitted scaler (serialization).
  static StandardScaler FromMoments(std::vector<double> mean,
                                    std::vector<double> std) {
    StandardScaler scaler;
    scaler.mean_ = std::move(mean);
    scaler.std_ = std::move(std);
    return scaler;
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace gaugur::ml
