#include "ml/scaler.h"

#include <cmath>

#include "common/check.h"

namespace gaugur::ml {

void StandardScaler::Fit(const Dataset& data) {
  GAUGUR_CHECK(data.NumRows() > 0);
  const std::size_t d = data.NumFeatures();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t i = 0; i < data.NumRows(); ++i) {
    const auto row = data.Row(i);
    for (std::size_t f = 0; f < d; ++f) mean_[f] += row[f];
  }
  for (auto& m : mean_) m /= static_cast<double>(data.NumRows());
  for (std::size_t i = 0; i < data.NumRows(); ++i) {
    const auto row = data.Row(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = row[f] - mean_[f];
      std_[f] += delta * delta;
    }
  }
  for (auto& s : std_) {
    s = std::sqrt(s / static_cast<double>(data.NumRows()));
    if (s < 1e-12) s = 1.0;  // constant feature: pass through centered
  }
}

void StandardScaler::Transform(std::span<const double> x,
                               std::vector<double>& out) const {
  GAUGUR_CHECK(IsFitted());
  GAUGUR_CHECK(x.size() == mean_.size());
  out.resize(x.size());
  for (std::size_t f = 0; f < x.size(); ++f) {
    out[f] = (x[f] - mean_[f]) / std_[f];
  }
}

Dataset StandardScaler::TransformDataset(const Dataset& data) const {
  Dataset out(data.NumFeatures(), data.FeatureNames());
  std::vector<double> row;
  for (std::size_t i = 0; i < data.NumRows(); ++i) {
    Transform(data.Row(i), row);
    out.Add(row, data.Target(i));
  }
  return out;
}

}  // namespace gaugur::ml
