// Pressure aggregation: how the occupancies of multiple co-running
// workloads combine into the contention pressure felt on each shared
// resource.
//
// The paper's Observation 5 is that game intensity is NOT additive: the
// aggregate pressure of two games can be well below or above the sum of
// their individual pressures, which is precisely what breaks the
// SMiTe/Paragon additive baselines. We model two physically motivated
// regimes:
//
//  * Bandwidth/compute-engine resources saturate: requests interleave, so
//    combined pressure follows the complement-product law
//        P = 1 - prod_j (1 - o_j)             (sub-additive)
//    — two 0.6 streams yield 0.84, not 1.2.
//
//  * Cache-capacity resources thrash: overlapping working sets evict each
//    other, so combined pressure gets a pairwise-overlap boost
//        P = min(cap, sum_j o_j + eta * sum_{j<k} min(o_j, o_k))
//    — two 0.4 working sets pressure the cache like 0.4+0.4+0.2 = 1.0
//    (super-additive).
//
// Both laws reduce to P = o for a single co-runner, so sensitivity curves
// profiled against a lone benchmark remain directly interpretable.
#pragma once

#include <span>

#include "resources/resource.h"

namespace gaugur::gamesim {

struct ContentionParams {
  /// Pairwise-overlap boost for cache-capacity resources.
  double cache_overlap_boost = 0.45;
  /// Ceiling on cache pressure (slightly above 1: total thrash).
  double cache_pressure_cap = 1.10;
};

/// Combined pressure on resource `r` from co-runner occupancies `occ`
/// (one value per co-runner; the victim itself is excluded by the caller).
double AggregatePressure(resources::Resource r, std::span<const double> occ,
                         const ContentionParams& params = {});

/// Convenience: aggregate across all resources at once. `occupancies[j]`
/// is co-runner j's full per-resource occupancy vector.
resources::PerResource<double> AggregatePressures(
    std::span<const resources::PerResource<double>> occupancies,
    const ContentionParams& params = {});

}  // namespace gaugur::gamesim
