#include "gamesim/server_sim.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace gaugur::gamesim {

using resources::Resource;

namespace {

/// Simulator telemetry: how much fixed-point work the "testbed" performs.
struct SimMetrics {
  obs::Counter& solve_calls =
      obs::Registry::Global().GetCounter("sim.solve_calls");
  obs::Counter& equilibrium_iters =
      obs::Registry::Global().GetCounter("sim.equilibrium_iters");
  obs::Counter& frames_simulated =
      obs::Registry::Global().GetCounter("sim.frames_simulated");
  obs::Counter& measurements =
      obs::Registry::Global().GetCounter("sim.measurements");

  static SimMetrics& Get() {
    static SimMetrics metrics;
    return metrics;
  }
};

constexpr int kMaxIterations = 200;
constexpr double kDamping = 0.5;
constexpr double kConvergenceTol = 1e-10;

/// Frame time of workload `w` (with scene-complexity scale) under the
/// given pressure vector.
double FrameMs(const WorkloadProfile& w, double complexity,
               const resources::PerResource<double>& pressure) {
  double cpu = w.t_cpu_ms * complexity;
  double gpu = w.t_gpu_render_ms * complexity;
  double xfer = w.t_xfer_ms * complexity;
  for (Resource r : resources::kAllResources) {
    const double factor = w.response[r].SlowdownFactor(pressure[r]);
    if (resources::IsCpuSide(r)) {
      cpu *= factor;
    } else if (resources::IsGpuSide(r)) {
      gpu *= factor;
    } else {  // PCIe
      xfer *= factor;
    }
  }
  const double pipeline = std::max(cpu, gpu + xfer);
  return std::max(pipeline, 1000.0 / w.fps_cap);
}

}  // namespace

ServerSim::ServerSim(resources::ServerSpec spec, ContentionParams contention)
    : spec_(std::move(spec)), contention_(contention) {}

bool ServerSim::FitsMemory(std::span<const WorkloadProfile> workloads) const {
  double cpu_mem = 0.0, gpu_mem = 0.0;
  for (const auto& w : workloads) {
    cpu_mem += w.cpu_memory;
    gpu_mem += w.gpu_memory;
  }
  return cpu_mem <= spec_.cpu_memory && gpu_mem <= spec_.gpu_memory;
}

std::vector<SessionResult> ServerSim::Solve(
    std::span<const WorkloadProfile> workloads,
    std::span<const double> complexity) const {
  GAUGUR_CHECK(workloads.size() == complexity.size());
  const std::size_t n = workloads.size();
  std::vector<SessionResult> results(n);
  if (n == 0) return results;

  std::vector<double> solo_rate(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Solo rate at this scene complexity (pressure-free frame time).
    static constexpr resources::PerResource<double> kNoPressure{};
    solo_rate[i] = 1000.0 / FrameMs(workloads[i], complexity[i], kNoPressure);
  }

  // Fixed point over rate ratios: occupancy scales with achieved rate,
  // pressure derives from occupancy, frame time derives from pressure.
  std::vector<double> ratio(n, 1.0);
  std::vector<resources::PerResource<double>> eff_occ(n);
  std::vector<double> occ_column(n > 0 ? n - 1 : 0);

  int iters_used = 0;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    ++iters_used;
    for (std::size_t j = 0; j < n; ++j) {
      const double scale =
          std::pow(ratio[j], workloads[j].throughput_coupling);
      for (Resource r : resources::kAllResources) {
        eff_occ[j][r] = workloads[j].occupancy[r] * scale;
      }
    }
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      resources::PerResource<double> pressure{};
      for (Resource r : resources::kAllResources) {
        std::size_t m = 0;
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) occ_column[m++] = eff_occ[j][r];
        }
        pressure[r] = AggregatePressure(
            r, std::span<const double>(occ_column.data(), m), contention_);
        // Heterogeneous-capacity servers scale felt pressure.
        pressure[r] /= spec_.capacity[r];
      }
      const double rate =
          1000.0 / FrameMs(workloads[i], complexity[i], pressure);
      const double new_ratio = std::min(1.0, rate / solo_rate[i]);
      const double damped =
          ratio[i] + kDamping * (new_ratio - ratio[i]);
      max_delta = std::max(max_delta, std::abs(damped - ratio[i]));
      ratio[i] = damped;
      results[i].rate = rate;
    }
    if (max_delta < kConvergenceTol) break;
  }
  if (obs::Enabled()) {
    SimMetrics& metrics = SimMetrics::Get();
    metrics.solve_calls.Add(1);
    metrics.equilibrium_iters.Add(static_cast<std::uint64_t>(iters_used));
  }
  for (std::size_t i = 0; i < n; ++i) {
    results[i].rate_ratio = std::min(1.0, results[i].rate / solo_rate[i]);
    results[i].rate = std::min(results[i].rate, solo_rate[i]);
  }
  return results;
}

std::vector<SessionResult> ServerSim::RunAnalytic(
    std::span<const WorkloadProfile> workloads) const {
  const std::vector<double> complexity(workloads.size(), 1.0);
  return Solve(workloads, complexity);
}

std::vector<SessionResult> ServerSim::Measure(
    std::span<const WorkloadProfile> workloads, std::uint64_t seed,
    double noise_sigma) const {
  SimMetrics::Get().measurements.Add(1);
  auto results = RunAnalytic(workloads);
  common::Rng rng(seed);
  for (auto& res : results) {
    // Log-normal multiplicative noise, mean-one to first order.
    const double noise = std::exp(rng.Gaussian(0.0, noise_sigma) -
                                  0.5 * noise_sigma * noise_sigma);
    res.rate *= noise;
    res.rate_ratio = std::min(1.0, res.rate_ratio * noise);
  }
  return results;
}

std::vector<FrameTimeStats> ServerSim::SimulateFrameTimes(
    std::span<const WorkloadProfile> workloads, int num_frames,
    std::uint64_t seed) const {
  GAUGUR_CHECK(num_frames > 0);
  SimMetrics::Get().frames_simulated.Add(static_cast<std::uint64_t>(num_frames));
  const std::size_t n = workloads.size();
  common::Rng rng(seed);

  std::vector<double> complexity(n, 1.0);
  constexpr double kAr = 0.98;
  constexpr double kSceneSigma = 0.05;
  const double innovation_sigma = kSceneSigma * std::sqrt(1.0 - kAr * kAr);
  std::vector<double> log_c(n, 0.0);

  std::vector<std::vector<double>> frame_ms(n);
  for (auto& v : frame_ms) v.reserve(static_cast<std::size_t>(num_frames));
  for (int f = 0; f < num_frames; ++f) {
    for (std::size_t j = 0; j < n; ++j) {
      log_c[j] = kAr * log_c[j] + rng.Gaussian(0.0, innovation_sigma);
      complexity[j] = std::exp(log_c[j]);
    }
    const auto frame = Solve(workloads, complexity);
    for (std::size_t j = 0; j < n; ++j) {
      frame_ms[j].push_back(1000.0 / frame[j].rate);
    }
  }

  std::vector<FrameTimeStats> stats(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto& ms = frame_ms[j];
    stats[j].mean_ms = common::Mean(ms);
    stats[j].p95_ms = common::Percentile(ms, 0.95);
    stats[j].max_ms = common::Max(ms);
  }
  return stats;
}

std::vector<SessionResult> ServerSim::SimulateFrames(
    std::span<const WorkloadProfile> workloads, int num_frames,
    std::uint64_t seed) const {
  GAUGUR_CHECK(num_frames > 0);
  SimMetrics::Get().frames_simulated.Add(static_cast<std::uint64_t>(num_frames));
  const std::size_t n = workloads.size();
  common::Rng rng(seed);

  // AR(1) scene-complexity process per workload: slow wander around 1.0.
  std::vector<double> complexity(n, 1.0);
  constexpr double kAr = 0.98;          // frame-to-frame persistence
  constexpr double kSceneSigma = 0.05;  // stationary stddev of log-complexity
  const double innovation_sigma = kSceneSigma * std::sqrt(1.0 - kAr * kAr);
  std::vector<double> log_c(n, 0.0);

  std::vector<double> rate_sum(n, 0.0);
  for (int f = 0; f < num_frames; ++f) {
    for (std::size_t j = 0; j < n; ++j) {
      log_c[j] = kAr * log_c[j] + rng.Gaussian(0.0, innovation_sigma);
      complexity[j] = std::exp(log_c[j]);
    }
    const auto frame = Solve(workloads, complexity);
    for (std::size_t j = 0; j < n; ++j) rate_sum[j] += frame[j].rate;
  }

  std::vector<SessionResult> results(n);
  for (std::size_t j = 0; j < n; ++j) {
    results[j].rate = rate_sum[j] / num_frames;
    results[j].rate_ratio =
        std::min(1.0, results[j].rate / workloads[j].SoloRate());
  }
  return results;
}

resources::PerResource<double> ServerSim::EquilibriumPressureOn(
    std::span<const WorkloadProfile> workloads, std::size_t victim) const {
  GAUGUR_CHECK(victim < workloads.size());
  const auto results = RunAnalytic(workloads);
  const std::size_t n = workloads.size();
  std::vector<double> occ_column;
  occ_column.reserve(n - 1);
  resources::PerResource<double> pressure{};
  for (Resource r : resources::kAllResources) {
    occ_column.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == victim) continue;
      const double scale =
          std::pow(results[j].rate_ratio, workloads[j].throughput_coupling);
      occ_column.push_back(workloads[j].occupancy[r] * scale);
    }
    pressure[r] = AggregatePressure(r, occ_column, contention_) /
                  spec_.capacity[r];
  }
  return pressure;
}

}  // namespace gaugur::gamesim
