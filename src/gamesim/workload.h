// WorkloadProfile: the common currency of the contention simulator.
//
// Both games (at a chosen resolution) and pressure micro-benchmarks (at a
// chosen pressure level) reduce to a WorkloadProfile before being handed
// to ServerSim. A profile captures:
//   * stage times of the frame/iteration loop when running alone,
//   * the occupancy this workload places on each shared resource,
//   * how each stage's time inflates under pressure on each resource,
//   * an optional throughput cap (game engine FPS cap).
//
// The frame loop is modeled as a pipelined CPU stage overlapping a GPU
// stage that includes a host<->device transfer slice:
//
//   frame_ms = max( t_cpu,  t_gpu_render + t_xfer )
//
// CPU-side resources (CPU-CE, LLC, MEM-BW) inflate t_cpu; GPU-side
// resources (GPU-CE, GPU-BW, GPU-L2) inflate t_gpu_render; PCIe-BW
// inflates t_xfer.
#pragma once

#include <string>

#include "gamesim/inflation_shape.h"
#include "resources/resource.h"

namespace gaugur::gamesim {

struct WorkloadProfile {
  std::string name;

  /// Solo stage times in milliseconds.
  double t_cpu_ms = 5.0;
  double t_gpu_render_ms = 5.0;
  double t_xfer_ms = 1.0;

  /// Throughput cap in iterations (frames) per second; large = uncapped.
  double fps_cap = 100000.0;

  /// Occupancy placed on each shared resource while running at the solo
  /// rate, in [0, ~1]. Occupancy scales down when the workload is slowed
  /// (see throughput_coupling).
  resources::PerResource<double> occupancy{};

  /// Exponent phi in [0,1]: effective occupancy = occupancy *
  /// (achieved_rate / solo_rate)^phi. 0 = pressure independent of achieved
  /// frame rate; 1 = pressure fully proportional to it.
  double throughput_coupling = 0.5;

  /// Per-resource stage inflation responses.
  resources::PerResource<InflationResponse> response{};

  /// Memory demands (capacity constraints only; no contention dimension).
  double cpu_memory = 0.05;
  double gpu_memory = 0.05;

  /// Solo frame time / rate implied by the stage times and cap.
  double SoloFrameMs() const {
    const double pipeline = std::max(t_cpu_ms, t_gpu_render_ms + t_xfer_ms);
    return std::max(pipeline, 1000.0 / fps_cap);
  }
  double SoloRate() const { return 1000.0 / SoloFrameMs(); }
};

}  // namespace gaugur::gamesim
