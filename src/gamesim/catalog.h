// The game catalog: 100 synthetic games standing in for the paper's 100
// commercial titles (the names come from the paper's reference [3] game
// list). Each game's hidden simulator parameters are drawn from one of
// eight genre archetypes, deterministically from the catalog seed, then a
// handful of showcase games are tuned to reproduce the paper's named
// qualitative examples:
//
//  * The Elder Scrolls 5 suffers ~70% degradation under max CPU-CE
//    pressure while Far Cry 4 suffers only ~30% (Observation 3);
//  * Granado Espada is very sensitive to GPU-CE but puts little intensity
//    on it (Observation 2);
//  * Ancestors Legacy + Borderland2 colocate at high FPS while Ancestors
//    Legacy + H1Z1 does not (Fig. 1);
//  * Dragon's Dogma + Little Witch Academia passes the VBP capacity test
//    yet violates a 60 FPS QoS floor when actually colocated (§2.2).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gamesim/game.h"

namespace gaugur::gamesim {

class GameCatalog {
 public:
  /// Builds the default 100-game catalog. Fully deterministic in `seed`.
  static GameCatalog MakeDefault(std::uint64_t seed = 42);

  const std::vector<Game>& games() const { return games_; }
  std::size_t size() const { return games_.size(); }
  const Game& operator[](std::size_t i) const { return games_.at(i); }

  /// Lookup by exact name; CHECK-fails if absent.
  const Game& ByName(std::string_view name) const;
  /// Lookup by exact name; nullptr if absent.
  const Game* FindByName(std::string_view name) const;

 private:
  std::vector<Game> games_;
};

}  // namespace gaugur::gamesim
