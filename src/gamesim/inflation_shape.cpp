#include "gamesim/inflation_shape.h"

#include <cmath>

#include "common/mathutil.h"

namespace gaugur::gamesim {

double InflationShape::Eval(double x) const {
  x = common::Clamp01(x);
  switch (kind) {
    case ShapeKind::kLinear:
      return x;
    case ShapeKind::kPower:
      return std::pow(x, p1);
    case ShapeKind::kLogistic: {
      // Normalize the sigmoid so the curve passes exactly through (0,0)
      // and (1,1) regardless of steepness/knee.
      const double lo = common::Sigmoid(p1 * (0.0 - p2));
      const double hi = common::Sigmoid(p1 * (1.0 - p2));
      const double v = common::Sigmoid(p1 * (x - p2));
      return (v - lo) / (hi - lo);
    }
    case ShapeKind::kPlateau: {
      if (x <= p2) return 0.0;
      return (x - p2) / (1.0 - p2);
    }
  }
  return x;
}

}  // namespace gaugur::gamesim
