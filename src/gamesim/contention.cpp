#include "gamesim/contention.h"

#include <algorithm>
#include <vector>

#include "common/mathutil.h"

namespace gaugur::gamesim {

using resources::Resource;

double AggregatePressure(Resource r, std::span<const double> occ,
                         const ContentionParams& params) {
  if (occ.empty()) return 0.0;
  if (resources::IsCacheCapacity(r)) {
    // Super-additive: footprints plus pairwise-overlap thrashing boost.
    double sum = 0.0;
    for (double o : occ) sum += std::max(0.0, o);
    double overlap = 0.0;
    for (std::size_t j = 0; j < occ.size(); ++j) {
      for (std::size_t k = j + 1; k < occ.size(); ++k) {
        overlap += std::min(std::max(0.0, occ[j]), std::max(0.0, occ[k]));
      }
    }
    return std::min(params.cache_pressure_cap,
                    sum + params.cache_overlap_boost * overlap);
  }
  // Sub-additive saturation: complement-product law.
  double complement = 1.0;
  for (double o : occ) complement *= 1.0 - common::Clamp01(o);
  return 1.0 - complement;
}

resources::PerResource<double> AggregatePressures(
    std::span<const resources::PerResource<double>> occupancies,
    const ContentionParams& params) {
  resources::PerResource<double> pressure{};
  std::vector<double> occ(occupancies.size());
  for (Resource r : resources::kAllResources) {
    for (std::size_t j = 0; j < occupancies.size(); ++j) {
      occ[j] = occupancies[j][r];
    }
    pressure[r] = AggregatePressure(r, occ, params);
  }
  return pressure;
}

}  // namespace gaugur::gamesim
