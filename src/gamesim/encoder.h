// Hardware video encoding (paper §7): cloud-gaming servers encode each
// session's rendered frames into a video stream. Modern GPUs carry a
// dedicated encoder block (NVENC-class), so encoding consumes almost no
// shader compute — its footprint is a small amount of GPU memory
// bandwidth (reading back frames), PCIe bandwidth (shipping the
// bitstream), and a sliver of CPU for the streaming stack. The paper
// argues this is insignificant and leaves it out; we model it so the
// claim can be checked (see EncoderImpact in the tests and the
// quantification in EXPERIMENTS.md).
#pragma once

#include "gamesim/workload.h"
#include "resources/resolution.h"

namespace gaugur::gamesim {

struct EncoderSettings {
  /// Streamed frame rate (encoder works per delivered frame).
  double stream_fps = 60.0;
  /// Footprints at 1080p60 as occupancy fractions; scaled linearly in
  /// streamed pixel throughput.
  double gpu_bw_occupancy = 0.015;
  double pcie_occupancy = 0.02;
  double cpu_occupancy = 0.01;
};

/// Adds a hardware-encoder footprint for a session streaming at
/// `resolution` to the session's own workload profile.
void AttachHardwareEncoder(WorkloadProfile& workload,
                           const resources::Resolution& resolution,
                           const EncoderSettings& settings = {});

}  // namespace gaugur::gamesim
