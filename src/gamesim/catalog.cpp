#include "gamesim/catalog.h"

#include <array>

#include "common/check.h"
#include "common/rng.h"
#include "resources/resolution.h"

namespace gaugur::gamesim {

using resources::Resource;

namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
  double Draw(common::Rng& rng) const { return rng.Uniform(lo, hi); }
};

/// Per-genre parameter distributions at the reference resolution (1080p)
/// on the default (GTX-1060-class) server.
struct GenreArchetype {
  Range t_cpu_ms;
  Range gpu_fps_intercept;   // F_gpu(M) = intercept - slope * M
  Range gpu_fps_slope;
  Range xfer_fraction;
  std::array<double, 4> cap_choices;  // candidate FPS caps (1e5 = uncapped)
  Range occ_cpu, occ_llc, occ_mem, occ_gpu, occ_gbw, occ_gl2, occ_pcie;
  Range amp_cpu_side;        // inflation amplitudes for CPU-side resources
  Range amp_gpu_side;
  Range amp_pcie;
  Range cpu_memory, gpu_memory;
};

const GenreArchetype& ArchetypeFor(Genre g) {
  // clang-format off
  static const GenreArchetype kMoba{
      {3.0, 6.0}, {300, 420}, {40, 70}, {0.06, 0.14}, {240, 300, 1e5, 1e5},
      {0.30, 0.50}, {0.20, 0.40}, {0.20, 0.35}, {0.30, 0.50},
      {0.25, 0.40}, {0.20, 0.40}, {0.15, 0.30},
      {0.5, 1.3}, {0.4, 1.1}, {0.2, 0.6}, {0.05, 0.12}, {0.05, 0.12}};
  static const GenreArchetype kFps{
      {2.5, 5.0}, {350, 500}, {50, 90}, {0.06, 0.14}, {300, 1e5, 1e5, 1e5},
      {0.35, 0.55}, {0.25, 0.45}, {0.25, 0.45}, {0.35, 0.60},
      {0.30, 0.50}, {0.25, 0.45}, {0.20, 0.35},
      {0.5, 1.4}, {0.5, 1.3}, {0.2, 0.7}, {0.06, 0.15}, {0.06, 0.15}};
  static const GenreArchetype kAaa{
      {8.0, 14.0}, {130, 190}, {25, 45}, {0.08, 0.18}, {1e5, 1e5, 1e5, 144},
      {0.40, 0.60}, {0.40, 0.60}, {0.40, 0.60}, {0.60, 0.85},
      {0.50, 0.80}, {0.40, 0.70}, {0.30, 0.50},
      {0.5, 1.2}, {0.6, 1.3}, {0.3, 0.8}, {0.12, 0.24}, {0.14, 0.24}};
  static const GenreArchetype kMmo{
      {6.0, 10.0}, {190, 270}, {30, 50}, {0.07, 0.15}, {1e5, 1e5, 144, 1e5},
      {0.50, 0.70}, {0.35, 0.55}, {0.40, 0.60}, {0.35, 0.55},
      {0.30, 0.50}, {0.25, 0.45}, {0.20, 0.35},
      {0.5, 1.3}, {0.4, 1.0}, {0.2, 0.6}, {0.10, 0.22}, {0.08, 0.18}};
  static const GenreArchetype kRts{
      {8.0, 16.0}, {200, 300}, {25, 45}, {0.05, 0.12}, {1e5, 1e5, 1e5, 72},
      {0.50, 0.75}, {0.50, 0.70}, {0.50, 0.70}, {0.25, 0.45},
      {0.20, 0.40}, {0.20, 0.40}, {0.12, 0.25},
      {0.6, 1.4}, {0.3, 0.8}, {0.15, 0.5}, {0.10, 0.22}, {0.06, 0.16}};
  static const GenreArchetype kIndie{
      {2.0, 4.0}, {400, 700}, {20, 60}, {0.04, 0.10}, {72, 144, 72, 1e5},
      {0.08, 0.22}, {0.06, 0.20}, {0.06, 0.18}, {0.08, 0.25},
      {0.06, 0.20}, {0.06, 0.18}, {0.04, 0.14},
      {0.2, 0.8}, {0.2, 0.7}, {0.1, 0.4}, {0.03, 0.08}, {0.03, 0.08}};
  static const GenreArchetype kRacing{
      {5.0, 8.0}, {180, 260}, {30, 55}, {0.07, 0.15}, {144, 72, 1e5, 1e5},
      {0.30, 0.50}, {0.25, 0.45}, {0.25, 0.45}, {0.40, 0.65},
      {0.35, 0.55}, {0.30, 0.50}, {0.20, 0.40},
      {0.5, 1.2}, {0.5, 1.3}, {0.2, 0.7}, {0.08, 0.18}, {0.08, 0.20}};
  static const GenreArchetype kCasual{
      {2.0, 5.0}, {300, 600}, {10, 40}, {0.04, 0.10}, {72, 72, 144, 72},
      {0.05, 0.15}, {0.04, 0.14}, {0.04, 0.12}, {0.05, 0.16},
      {0.04, 0.13}, {0.04, 0.12}, {0.03, 0.10},
      {0.15, 0.6}, {0.15, 0.6}, {0.1, 0.35}, {0.02, 0.06}, {0.02, 0.06}};
  // clang-format on
  switch (g) {
    case Genre::kMoba:           return kMoba;
    case Genre::kCompetitiveFps: return kFps;
    case Genre::kOpenWorldAaa:   return kAaa;
    case Genre::kMmorpg:         return kMmo;
    case Genre::kRtsSim:         return kRts;
    case Genre::kIndie2d:        return kIndie;
    case Genre::kRacingSports:   return kRacing;
    case Genre::kCasual:         return kCasual;
  }
  return kCasual;
}

/// Random inflation shape; cache resources favor cliff/plateau responses
/// (working-set effects), bandwidth resources favor concave ones.
InflationShape DrawShape(common::Rng& rng, Resource r) {
  const double u = rng.Uniform();
  if (resources::IsCacheCapacity(r)) {
    if (u < 0.45) return InflationShape::Power(rng.Uniform(1.6, 3.2));
    if (u < 0.80) return InflationShape::Plateau(rng.Uniform(0.25, 0.55));
    return InflationShape::Logistic(rng.Uniform(6.0, 12.0),
                                    rng.Uniform(0.4, 0.7));
  }
  if (r == Resource::kMemBw || r == Resource::kGpuBw ||
      r == Resource::kPcieBw) {
    if (u < 0.40) return InflationShape::Power(rng.Uniform(0.5, 0.9));
    if (u < 0.75) return InflationShape::Linear();
    return InflationShape::Logistic(rng.Uniform(4.0, 8.0),
                                    rng.Uniform(0.3, 0.6));
  }
  // Compute engines.
  if (u < 0.35) return InflationShape::Linear();
  if (u < 0.70) return InflationShape::Logistic(rng.Uniform(5.0, 10.0),
                                                rng.Uniform(0.35, 0.65));
  return InflationShape::Power(rng.Uniform(1.2, 2.2));
}

Game GenerateGame(int id, std::string name, Genre genre, common::Rng rng) {
  const GenreArchetype& a = ArchetypeFor(genre);
  Game g;
  g.id = id;
  g.name = std::move(name);
  g.genre = genre;
  g.t_cpu_ms = a.t_cpu_ms.Draw(rng);
  g.gpu_fps_intercept = a.gpu_fps_intercept.Draw(rng);
  g.gpu_fps_slope = a.gpu_fps_slope.Draw(rng);
  g.xfer_fraction = a.xfer_fraction.Draw(rng);
  g.fps_cap = a.cap_choices[rng.UniformInt(4)];
  g.pixel_scale_floor = rng.Uniform(0.15, 0.35);
  g.throughput_coupling = rng.Uniform(0.2, 0.5);
  g.cpu_memory = a.cpu_memory.Draw(rng);
  g.gpu_memory = a.gpu_memory.Draw(rng);

  g.occupancy_ref[Resource::kCpuCore] = a.occ_cpu.Draw(rng);
  g.occupancy_ref[Resource::kLlc] = a.occ_llc.Draw(rng);
  g.occupancy_ref[Resource::kMemBw] = a.occ_mem.Draw(rng);
  g.occupancy_ref[Resource::kGpuCore] = a.occ_gpu.Draw(rng);
  g.occupancy_ref[Resource::kGpuBw] = a.occ_gbw.Draw(rng);
  g.occupancy_ref[Resource::kGpuL2] = a.occ_gl2.Draw(rng);
  g.occupancy_ref[Resource::kPcieBw] = a.occ_pcie.Draw(rng);

  for (Resource r : resources::kAllResources) {
    double amp;
    if (resources::IsCpuSide(r)) {
      amp = a.amp_cpu_side.Draw(rng);
    } else if (resources::IsGpuSide(r)) {
      amp = a.amp_gpu_side.Draw(rng);
    } else {
      amp = a.amp_pcie.Draw(rng);
    }
    g.response[r] = InflationResponse{amp, DrawShape(rng, r)};
  }
  return g;
}

struct NamedGame {
  std::string_view name;
  Genre genre;
};

/// The 100 titles (names from the paper's reference [3]) with the genre
/// archetype each one draws its hidden parameters from.
constexpr auto kGameList = std::to_array<NamedGame>({
    // MOBAs / arena games.
    {"Dota2", Genre::kMoba},
    {"LoL", Genre::kMoba},
    {"AirMech Strike", Genre::kMoba},
    {"Battlerite", Genre::kMoba},
    {"Tiger Knight", Genre::kMoba},
    // Competitive shooters.
    {"H1Z1", Genre::kCompetitiveFps},
    {"CoD14", Genre::kCompetitiveFps},
    {"Team Fortress 2", Genre::kCompetitiveFps},
    {"Black Squad", Genre::kCompetitiveFps},
    {"Warface", Genre::kCompetitiveFps},
    {"PlanetSide2", Genre::kCompetitiveFps},
    {"Heroes and Generals", Genre::kCompetitiveFps},
    {"Radical Heights", Genre::kCompetitiveFps},
    {"Unturned", Genre::kCompetitiveFps},
    {"Robocraft", Genre::kCompetitiveFps},
    // Open-world / AAA.
    {"Far Cry 4", Genre::kOpenWorldAaa},
    {"The Witcher 3 - Wild Hunt", Genre::kOpenWorldAaa},
    {"Assassin's Creed Origins", Genre::kOpenWorldAaa},
    {"Rise of The Tomb Raider", Genre::kOpenWorldAaa},
    {"The Elder Scrolls 5", Genre::kOpenWorldAaa},
    {"ARK Survival Evolved", Genre::kOpenWorldAaa},
    {"Kingdom Come: Deliverance", Genre::kOpenWorldAaa},
    {"DARK SOULS III", Genre::kOpenWorldAaa},
    {"Dragon's Dogma", Genre::kOpenWorldAaa},
    {"NieR: Automata", Genre::kOpenWorldAaa},
    {"Borderland2", Genre::kOpenWorldAaa},
    {"DmC: Devil May Cry", Genre::kOpenWorldAaa},
    {"FINAL FANTASY XII The Zodiac Age", Genre::kOpenWorldAaa},
    {"H1Z1 Test Server", Genre::kOpenWorldAaa},
    // MMO / online worlds.
    {"World of Warcraft", Genre::kMmorpg},
    {"Granado Espada", Genre::kMmorpg},
    {"Warframe", Genre::kMmorpg},
    {"World of Warships", Genre::kMmorpg},
    {"War Thunder", Genre::kMmorpg},
    {"War Robots", Genre::kMmorpg},
    {"VEGA Conflict", Genre::kMmorpg},
    {"Russian Fishing 4", Genre::kMmorpg},
    {"GUNS UP!", Genre::kMmorpg},
    {"The Legend of Heroes: Trails of Cold Steel", Genre::kMmorpg},
    // RTS / simulation.
    {"Ancestors Legacy", Genre::kRtsSim},
    {"StarCraft 2", Genre::kRtsSim},
    {"Cities: Skylines", Genre::kRtsSim},
    {"Stellaris", Genre::kRtsSim},
    {"RimWorld", Genre::kRtsSim},
    {"Oxygen Not Included", Genre::kRtsSim},
    {"Northgard", Genre::kRtsSim},
    {"Empire Earth III", Genre::kRtsSim},
    {"CALL TO ARMS", Genre::kRtsSim},
    {"Craft The World", Genre::kRtsSim},
    {"Romance of the Three Kingdoms 11", Genre::kRtsSim},
    {"Warcraft", Genre::kRtsSim},
    {"Divinity: Original Sin 2", Genre::kRtsSim},
    {"Hobo: Tough Life", Genre::kRtsSim},
    // Indie / 2D.
    {"Stardew Valley", Genre::kIndie2d},
    {"Slay the Spire", Genre::kIndie2d},
    {"Ori and the Blind Forest", Genre::kIndie2d},
    {"Salt and Sanctuary", Genre::kIndie2d},
    {"Little Nightmares", Genre::kIndie2d},
    {"Candle", Genre::kIndie2d},
    {"FAR: Lone Sails", Genre::kIndie2d},
    {"Getting Over It with Bennett Foddy", Genre::kIndie2d},
    {"Human: Fall Flat", Genre::kIndie2d},
    {"BlubBlub", Genre::kIndie2d},
    {"Gems of War", Genre::kIndie2d},
    {"Delicious 12", Genre::kIndie2d},
    {"Maries Room", Genre::kIndie2d},
    {"A Walk in the Woods", Genre::kIndie2d},
    {"After Dreams", Genre::kIndie2d},
    {"Frightened Beetles", Genre::kIndie2d},
    {"The Sibling Experiment", Genre::kIndie2d},
    {"The will of a single Tale", Genre::kIndie2d},
    {"Project RAT", Genre::kIndie2d},
    {"Cognizer", Genre::kIndie2d},
    {"Destined", Genre::kIndie2d},
    {"Torchlight II", Genre::kIndie2d},
    {"The Long Dark", Genre::kIndie2d},
    {"Impact Winter", Genre::kIndie2d},
    {"Life is Strange: Before the Storm", Genre::kIndie2d},
    {"Little Witch Academia", Genre::kIndie2d},
    // Racing / sports / fighting (balanced pipelines).
    {"Need for Speed: Hot Pursuit", Genre::kRacingSports},
    {"Project CARS", Genre::kRacingSports},
    {"WRC 5", Genre::kRacingSports},
    {"NBA 2K17", Genre::kRacingSports},
    {"NBA Playgrounds", Genre::kRacingSports},
    {"PES2017", Genre::kRacingSports},
    {"PES2015", Genre::kRacingSports},
    {"PES2012", Genre::kRacingSports},
    {"TEKKEN 7", Genre::kRacingSports},
    {"NARUTO SHIPPUDEN: Ultimate Ninja STORM 4", Genre::kRacingSports},
    {"DRAGON BALL XENOVERSE 2", Genre::kRacingSports},
    {"Dynasty Warriors 5", Genre::kRacingSports},
    {"Mahou Arms", Genre::kRacingSports},
    {"RiME", Genre::kRacingSports},
    // Casual / card / idle.
    {"Hearth Stone", Genre::kCasual},
    {"Shop Heroes", Genre::kCasual},
    {"Endless Fables: The Minotaur's Curse", Genre::kCasual},
    {"The Walking Dead: A New Frontier", Genre::kCasual},
    {"Hand of Fate 2", Genre::kCasual},
    {"Logout", Genre::kCasual},
    {"Tactical Monsters Rumble Arena", Genre::kCasual},
});
static_assert(kGameList.size() == 100);

/// Showcase-game tuning to reproduce the paper's named qualitative facts.
void ApplyShowcaseOverrides(std::vector<Game>& games) {
  auto find = [&](std::string_view name) -> Game& {
    for (auto& g : games) {
      if (g.name == name) return g;
    }
    common::CheckFailed("showcase game present", __FILE__, __LINE__,
                        std::string(name));
  };

  {
    // Observation 3: ~70% degradation under max CPU-CE pressure. Make the
    // game CPU-bound so CPU-stage inflation hits frame time directly.
    Game& tes = find("The Elder Scrolls 5");
    tes.t_cpu_ms = 11.0;                     // 91 FPS CPU limit
    tes.gpu_fps_intercept = 200.0;           // plenty of GPU headroom
    tes.gpu_fps_slope = 30.0;
    tes.fps_cap = 1e5;
    tes.response[Resource::kCpuCore] =
        InflationResponse{2.3, InflationShape::Logistic(7.0, 0.45)};
  }
  {
    // Observation 3 + 1: sensitive to everything, but only ~30% CPU-CE
    // degradation at max pressure (GPU-bound with moderate CPU headroom).
    Game& fc = find("Far Cry 4");
    // GPU-bound at every player resolution (CPU limit 143 > GPU limit at
    // 720p of ~124), so the Eq. 2 linear fit holds across the range.
    fc.t_cpu_ms = 7.0;
    fc.gpu_fps_intercept = 150.0;  // F_gpu(2.07 Mpix) ~= 92 FPS
    fc.gpu_fps_slope = 28.0;
    fc.fps_cap = 1e5;
    fc.response[Resource::kCpuCore] =
        InflationResponse{1.22, InflationShape::Power(1.4)};
    fc.response[Resource::kLlc] =
        InflationResponse{0.9, InflationShape::Plateau(0.35)};
    fc.response[Resource::kMemBw] =
        InflationResponse{0.85, InflationShape::Power(0.7)};
    fc.response[Resource::kGpuCore] =
        InflationResponse{1.3, InflationShape::Logistic(6.0, 0.5)};
    fc.response[Resource::kGpuBw] =
        InflationResponse{1.0, InflationShape::Power(0.8)};
    fc.response[Resource::kGpuL2] =
        InflationResponse{0.8, InflationShape::Power(2.0)};
    fc.response[Resource::kPcieBw] =
        InflationResponse{0.6, InflationShape::Linear()};
  }
  {
    // Observation 2: very sensitive to GPU-CE, but light GPU-CE intensity.
    Game& ge = find("Granado Espada");
    ge.response[Resource::kGpuCore] =
        InflationResponse{2.6, InflationShape::Logistic(8.0, 0.4)};
    ge.occupancy_ref[Resource::kGpuCore] = 0.12;
    ge.gpu_fps_intercept = 230.0;
    ge.gpu_fps_slope = 40.0;
    ge.t_cpu_ms = 7.0;
  }
  {
    // Fig. 1: Ancestors Legacy + Borderland2 colocate above 60 FPS...
    Game& al = find("Ancestors Legacy");
    al.t_cpu_ms = 8.0;  // 125 FPS CPU limit
    al.gpu_fps_intercept = 220.0;
    al.gpu_fps_slope = 35.0;
    al.fps_cap = 1e5;
    for (Resource r : resources::kAllResources) {
      al.response[r].amplitude *= 0.7;  // fairly contention-tolerant
    }
    al.response[Resource::kCpuCore] =
        InflationResponse{1.4, InflationShape::Logistic(7.0, 0.55)};
    for (auto& o : al.occupancy_ref) o *= 0.8;

    Game& bl = find("Borderland2");
    bl.t_cpu_ms = 7.5;
    bl.gpu_fps_intercept = 210.0;
    bl.gpu_fps_slope = 34.0;
    bl.fps_cap = 1e5;
    for (auto& o : bl.occupancy_ref) o *= 0.75;   // light co-runner
    for (Resource r : resources::kAllResources) {
      bl.response[r].amplitude *= 0.55;           // contention-tolerant too
    }

    // ... while H1Z1 is a heavy, messy co-runner.
    Game& h1 = find("H1Z1");
    h1.occupancy_ref[Resource::kCpuCore] = 0.62;
    h1.occupancy_ref[Resource::kMemBw] = 0.55;
    h1.occupancy_ref[Resource::kGpuCore] = 0.60;
    h1.occupancy_ref[Resource::kGpuBw] = 0.52;
  }
  {
    // §2.2: VBP-feasible pair that violates QoS when actually colocated.
    Game& dd = find("Dragon's Dogma");
    dd.occupancy_ref[Resource::kCpuCore] = 0.45;
    dd.occupancy_ref[Resource::kGpuCore] = 0.32;
    dd.cpu_memory = 0.06;
    dd.gpu_memory = 0.05;

    Game& lwa = find("Little Witch Academia");
    lwa.t_cpu_ms = 6.0;
    lwa.gpu_fps_intercept = 130.0;  // solo ~68 FPS at 1080p
    lwa.gpu_fps_slope = 30.0;
    lwa.fps_cap = 1e5;
    lwa.occupancy_ref[Resource::kCpuCore] = 0.33;
    lwa.occupancy_ref[Resource::kGpuCore] = 0.60;
    lwa.cpu_memory = 0.25;
    lwa.gpu_memory = 0.50;
    lwa.response[Resource::kGpuCore] =
        InflationResponse{1.6, InflationShape::Power(0.75)};
    lwa.response[Resource::kCpuCore] =
        InflationResponse{1.0, InflationShape::Power(0.8)};
  }
}

}  // namespace

GameCatalog GameCatalog::MakeDefault(std::uint64_t seed) {
  GameCatalog catalog;
  common::Rng root(seed);
  catalog.games_.reserve(kGameList.size());
  for (std::size_t i = 0; i < kGameList.size(); ++i) {
    catalog.games_.push_back(GenerateGame(static_cast<int>(i),
                                          std::string(kGameList[i].name),
                                          kGameList[i].genre,
                                          root.Fork(i)));
  }
  ApplyShowcaseOverrides(catalog.games_);
  return catalog;
}

const Game* GameCatalog::FindByName(std::string_view name) const {
  for (const auto& g : games_) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const Game& GameCatalog::ByName(std::string_view name) const {
  const Game* g = FindByName(name);
  GAUGUR_CHECK_MSG(g != nullptr, "no game named " << name);
  return *g;
}

}  // namespace gaugur::gamesim
