#include "gamesim/game.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gaugur::gamesim {

using resources::Resolution;
using resources::Resource;

namespace {
// Minimum GPU throughput: even pathological resolutions render something.
constexpr double kMinGpuFps = 5.0;
}  // namespace

std::string_view GenreName(Genre g) {
  switch (g) {
    case Genre::kMoba:           return "MOBA";
    case Genre::kCompetitiveFps: return "CompetitiveFPS";
    case Genre::kOpenWorldAaa:   return "OpenWorldAAA";
    case Genre::kMmorpg:         return "MMORPG";
    case Genre::kRtsSim:         return "RTS/Sim";
    case Genre::kIndie2d:        return "Indie2D";
    case Genre::kRacingSports:   return "Racing/Sports";
    case Genre::kCasual:         return "Casual";
  }
  return "?";
}

double Game::GpuLimitFps(const Resolution& res) const {
  return std::max(kMinGpuFps,
                  gpu_fps_intercept - gpu_fps_slope * res.Megapixels());
}

double Game::SoloFps(const Resolution& res) const {
  const double cpu_limit = 1000.0 / t_cpu_ms;
  return std::min({fps_cap, cpu_limit, GpuLimitFps(res)});
}

WorkloadProfile Game::AtResolution(const Resolution& res) const {
  GAUGUR_CHECK(t_cpu_ms > 0.0);
  GAUGUR_CHECK(xfer_fraction >= 0.0 && xfer_fraction < 1.0);

  WorkloadProfile w;
  w.name = name;
  w.t_cpu_ms = t_cpu_ms;
  const double t_gpu_total_ms = 1000.0 / GpuLimitFps(res);
  w.t_gpu_render_ms = t_gpu_total_ms * (1.0 - xfer_fraction);
  w.t_xfer_ms = t_gpu_total_ms * xfer_fraction;
  w.fps_cap = fps_cap;
  w.throughput_coupling = throughput_coupling;
  w.cpu_memory = cpu_memory;
  w.gpu_memory = gpu_memory;
  w.response = response;

  const double pixel_ratio =
      res.Megapixels() / resources::kReferenceResolution.Megapixels();
  const double gpu_scale =
      pixel_scale_floor + (1.0 - pixel_scale_floor) * pixel_ratio;
  for (Resource r : resources::kAllResources) {
    const double scale = resources::ScalesWithPixels(r) ? gpu_scale : 1.0;
    w.occupancy[r] = occupancy_ref[r] * scale;
  }
  // A frame-capped game that could render faster idles between frames;
  // its steady-state occupancy shrinks with the duty cycle it actually
  // sustains relative to its uncapped pipeline throughput.
  const double pipeline_fps =
      std::min(1000.0 / t_cpu_ms, GpuLimitFps(res));
  if (fps_cap < pipeline_fps) {
    const double duty = fps_cap / pipeline_fps;
    for (auto& o : w.occupancy) o *= duty;
  }
  return w;
}

}  // namespace gaugur::gamesim
