#include "gamesim/encoder.h"

#include <algorithm>

#include "resources/resource.h"

namespace gaugur::gamesim {

using resources::Resource;

void AttachHardwareEncoder(WorkloadProfile& workload,
                           const resources::Resolution& resolution,
                           const EncoderSettings& settings) {
  // Pixel throughput relative to 1080p60.
  const double reference_throughput =
      resources::k1080p.NumPixels() * 60.0;
  const double throughput =
      resolution.NumPixels() * std::min(settings.stream_fps, 240.0);
  const double scale = throughput / reference_throughput;

  workload.occupancy[Resource::kGpuBw] += settings.gpu_bw_occupancy * scale;
  workload.occupancy[Resource::kPcieBw] += settings.pcie_occupancy * scale;
  workload.occupancy[Resource::kCpuCore] += settings.cpu_occupancy * scale;
}

}  // namespace gaugur::gamesim
