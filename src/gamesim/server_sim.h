// ServerSim: the stand-in for the paper's physical testbed (i7-7700 +
// GTX 1060 under ASTER multiseat). It "runs" a set of colocated workloads
// and reports each one's throughput.
//
// The model: each workload's occupancies generate contention pressure on
// the seven shared resources (contention.h); pressure inflates the other
// workloads' stage times (inflation_shape.h); and occupancy itself scales
// with the rate a workload actually sustains (a game rendering at half
// speed issues roughly half the memory traffic). That feedback loop makes
// the colocation a fixed point, which RunAnalytic solves by damped
// iteration.
//
// Three entry points:
//  * RunAnalytic    — exact equilibrium, no noise (ground truth).
//  * Measure        — equilibrium + multiplicative measurement noise,
//                     emulating the paper's several-minute mean-FPS
//                     measurements over a varying game scene.
//  * SimulateFrames — frame-by-frame simulation with AR(1) scene-
//                     complexity jitter; used to validate that Measure's
//                     closed form matches the mean of an actual frame loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gamesim/contention.h"
#include "gamesim/workload.h"
#include "resources/server_spec.h"

namespace gaugur::gamesim {

struct SessionResult {
  /// Achieved throughput (frames or iterations per second).
  double rate = 0.0;
  /// rate / solo rate, in (0, 1]: the paper's "performance degradation".
  double rate_ratio = 1.0;
};

/// Frame-time distribution of one session over a simulated scene (for the
/// paper's §7 interaction-delay extension: processing delay ~ frame time).
struct FrameTimeStats {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

class ServerSim {
 public:
  explicit ServerSim(resources::ServerSpec spec = resources::ServerSpec::Default(),
                     ContentionParams contention = {});

  const resources::ServerSpec& spec() const { return spec_; }

  /// True if the workloads' total memory demands fit the server.
  bool FitsMemory(std::span<const WorkloadProfile> workloads) const;

  /// Exact contention equilibrium (deterministic, noise-free).
  std::vector<SessionResult> RunAnalytic(
      std::span<const WorkloadProfile> workloads) const;

  /// Equilibrium plus multiplicative log-normal measurement noise with the
  /// given sigma. Deterministic in `seed`.
  std::vector<SessionResult> Measure(std::span<const WorkloadProfile> workloads,
                                     std::uint64_t seed,
                                     double noise_sigma = 0.015) const;

  /// Simulates `num_frames` frames; each workload's stage times are
  /// modulated by an AR(1) scene-complexity process. Returns mean rates.
  std::vector<SessionResult> SimulateFrames(
      std::span<const WorkloadProfile> workloads, int num_frames,
      std::uint64_t seed) const;

  /// Same frame loop, but returns each session's frame-time distribution
  /// statistics (processing-delay observable, paper §7).
  std::vector<FrameTimeStats> SimulateFrameTimes(
      std::span<const WorkloadProfile> workloads, int num_frames,
      std::uint64_t seed) const;

  /// Pressure vector felt by workload `victim` at equilibrium — exposed
  /// for tests and the ablation benches, not used by predictors.
  resources::PerResource<double> EquilibriumPressureOn(
      std::span<const WorkloadProfile> workloads, std::size_t victim) const;

 private:
  /// Core fixed-point solve; `complexity[j]` scales workload j's stage
  /// times (1.0 = nominal scene).
  std::vector<SessionResult> Solve(std::span<const WorkloadProfile> workloads,
                                   std::span<const double> complexity) const;

  resources::ServerSpec spec_;
  ContentionParams contention_;
};

}  // namespace gaugur::gamesim
