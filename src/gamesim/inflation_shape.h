// Parametric families of stage-time inflation responses.
//
// When a workload suffers pressure x in [0, 1] on a shared resource, the
// affected frame-loop stage slows down by a factor s(x) = 1 + A * h(x),
// where A is the amplitude (how contention-sensitive the workload is at
// full pressure) and h is a normalized shape with h(0) = 0, h(1) = 1.
//
// The shape families below reproduce the qualitative variety of the
// paper's measured sensitivity curves (Fig. 4, Observation 4): linear
// responses, convex "cliff" responses that only hurt near saturation
// (cache capacity working-set effects), concave responses that hurt
// immediately (bandwidth-bound stages), and logistic responses with an
// interior knee.
#pragma once

#include <cstdint>

namespace gaugur::gamesim {

enum class ShapeKind : std::uint8_t {
  kLinear = 0,   // h(x) = x
  kPower,        // h(x) = x^p          (p>1 convex cliff, p<1 concave)
  kLogistic,     // normalized sigmoid with knee at `knee`, steepness `steep`
  kPlateau,      // flat until `knee`, then linear ramp to 1
};

/// A normalized response shape h: [0,1] -> [0,1] with h(0)=0, h(1)=1.
struct InflationShape {
  ShapeKind kind = ShapeKind::kLinear;
  /// kPower: exponent p. kLogistic: steepness. kPlateau: unused.
  double p1 = 1.0;
  /// kLogistic / kPlateau: knee location in (0,1). Others: unused.
  double p2 = 0.5;

  /// Evaluate h(x); x outside [0,1] is clamped.
  double Eval(double x) const;

  static InflationShape Linear() { return {ShapeKind::kLinear, 1.0, 0.5}; }
  static InflationShape Power(double p) { return {ShapeKind::kPower, p, 0.5}; }
  static InflationShape Logistic(double steepness, double knee) {
    return {ShapeKind::kLogistic, steepness, knee};
  }
  static InflationShape Plateau(double knee) {
    return {ShapeKind::kPlateau, 0.0, knee};
  }
};

/// Amplitude + shape: the full response of one stage to one resource.
/// Slowdown factor is 1 + amplitude * shape(pressure).
struct InflationResponse {
  double amplitude = 0.0;
  InflationShape shape = InflationShape::Linear();

  double SlowdownFactor(double pressure) const {
    return 1.0 + amplitude * shape.Eval(pressure);
  }
};

}  // namespace gaugur::gamesim
