// GameProfile persistence. Profiling a catalog costs hundreds of server
// measurements per game; operators run it once and load the profiles into
// every scheduler instance. Same line-oriented lossless text format as
// ml/serialize.h.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "profiling/game_profile.h"

namespace gaugur::profiling {

void SaveProfile(std::ostream& os, const GameProfile& profile);
GameProfile LoadProfile(std::istream& is);

void SaveProfiles(std::ostream& os, const std::vector<GameProfile>& profiles);
std::vector<GameProfile> LoadProfiles(std::istream& is);

/// File wrappers; Save returns false on I/O failure, Load CHECK-fails.
bool SaveProfilesToFile(const std::string& path,
                        const std::vector<GameProfile>& profiles);
std::vector<GameProfile> LoadProfilesFromFile(const std::string& path);

}  // namespace gaugur::profiling
