// The contention-feature profile of one game — everything GAugur and the
// baselines are allowed to know about a game. Produced offline by the
// Profiler (profiler.h) purely from observable measurements: frame rates,
// benchmark runtimes, and utilization counters. The hidden simulator
// parameters never leak into a GameProfile.
#pragma once

#include <string>
#include <vector>

#include "common/check.h"
#include "common/mathutil.h"
#include "resources/resolution.h"
#include "resources/resource.h"

namespace gaugur::profiling {

/// Degradation (retained-FPS ratio, 1 = unharmed) of a game under the
/// pressure grid {0, 1/k, ..., 1} of one resource's benchmark. This is the
/// paper's sensitivity curve S_r^A (Eq. 1).
struct SensitivityCurve {
  std::vector<double> degradation;

  /// Piecewise-linear interpolation at an arbitrary pressure in [0, 1].
  double At(double pressure) const {
    GAUGUR_CHECK(degradation.size() >= 2);
    return common::InterpUniformGrid(degradation.data(),
                                     static_cast<int>(degradation.size()),
                                     pressure);
  }

  /// The paper's "sensitivity score": degradation at maximum pressure.
  double Score() const {
    GAUGUR_CHECK(!degradation.empty());
    return degradation.back();
  }
};

struct GameProfile {
  int game_id = -1;
  std::string name;

  /// Solo FPS measured at the reference resolution.
  double solo_fps_ref = 0.0;
  /// Eq. 2: solo FPS as a linear function of megapixels, fit from two
  /// profiled resolutions. Kept for the paper-comparison benches.
  resources::PixelLinearModel solo_fps_model;
  /// (megapixels, solo FPS) anchors at the profiled resolutions, sorted
  /// by megapixels. Our games have a bottleneck kink (frame cap or CPU
  /// limit flattens the low-resolution side), so SoloFps() interpolates
  /// piecewise-linearly over three profiled resolutions instead of
  /// extrapolating the Eq. 2 line — one extra solo measurement per game.
  std::vector<std::pair<double, double>> solo_fps_points;

  /// Sensitivity curves at the reference resolution. Observation 6: these
  /// are (approximately) resolution-invariant, so one profile suffices.
  std::array<SensitivityCurve, resources::kNumResources> sensitivity;

  /// Intensity (mean benchmark slowdown - 1) at the reference resolution.
  resources::PerResource<double> intensity_ref{};
  /// Observations 7-8: intensity as a linear function of megapixels
  /// (near-zero slope for CPU-side resources), fit from two resolutions.
  resources::PerResource<resources::PixelLinearModel> intensity_model{};

  /// Solo utilization counters (for the VBP baseline and Fig. 2a).
  resources::PerResource<double> solo_utilization{};
  double cpu_memory = 0.0;
  double gpu_memory = 0.0;

  /// Predicted solo FPS at any resolution: piecewise-linear over the
  /// profiled anchors when available, else the Eq. 2 line.
  double SoloFps(const resources::Resolution& res) const {
    if (solo_fps_points.size() < 2) {
      return std::max(1.0, solo_fps_model.Eval(res));
    }
    const double m = res.Megapixels();
    const auto& pts = solo_fps_points;
    std::size_t hi = 1;
    while (hi + 1 < pts.size() && m > pts[hi].first) ++hi;
    const auto& [m0, f0] = pts[hi - 1];
    const auto& [m1, f1] = pts[hi];
    const double t = (m - m0) / (m1 - m0);
    return std::max(1.0, f0 + (f1 - f0) * t);
  }

  /// Predicted intensity on `r` at any resolution via Observations 7-8.
  double IntensityAt(resources::Resource r,
                     const resources::Resolution& res) const {
    return std::max(0.0, intensity_model[r].Eval(res));
  }

  const SensitivityCurve& Sensitivity(resources::Resource r) const {
    return sensitivity[resources::Index(r)];
  }
};

}  // namespace gaugur::profiling
