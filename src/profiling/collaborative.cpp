#include "profiling/collaborative.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/stats.h"
#include "microbench/pressure_bench.h"

namespace gaugur::profiling {

using gamesim::WorkloadProfile;
using resources::Resolution;
using resources::Resource;

namespace {

double MeasureSolo(const gamesim::ServerSim& server, const WorkloadProfile& w,
                   common::Rng& rng, double noise) {
  const std::vector<WorkloadProfile> solo{w};
  return server.Measure(solo, rng.Next(), noise)[0].rate;
}

}  // namespace

PartialProfiler::PartialProfiler(const gamesim::ServerSim& server,
                                 ProfilerOptions options)
    : server_(server), options_(options) {}

PartialProfile PartialProfiler::ProbeGame(const gamesim::Game& game) const {
  common::Rng rng(options_.seed ^
                  (0xd1342543de82ef95ULL *
                   static_cast<std::uint64_t>(game.id + 1)));
  PartialProfile probe;
  probe.game_id = game.id;
  probe.name = game.name;
  probe.cpu_memory = game.cpu_memory;
  probe.gpu_memory = game.gpu_memory;

  const Resolution res_a = options_.primary_res;
  const Resolution res_b = options_.secondary_res;
  const Resolution res_c = options_.tertiary_res;
  const WorkloadProfile game_a = game.AtResolution(res_a);
  const WorkloadProfile game_b = game.AtResolution(res_b);

  const double solo_a = MeasureSolo(server_, game_a, rng,
                                    options_.noise_sigma);
  const double solo_b = MeasureSolo(server_, game_b, rng,
                                    options_.noise_sigma);
  const double solo_c = MeasureSolo(server_, game.AtResolution(res_c), rng,
                                    options_.noise_sigma);
  probe.solo_fps_points = {{res_a.Megapixels(), solo_a},
                           {res_b.Megapixels(), solo_b},
                           {res_c.Megapixels(), solo_c}};
  std::sort(probe.solo_fps_points.begin(), probe.solo_fps_points.end());
  probe.solo_fps_model = resources::PixelLinearModel::FromTwoPoints(
      res_a, solo_a, res_b, solo_b);

  probe.solo_utilization = game_a.occupancy;
  for (auto& u : probe.solo_utilization) {
    u = std::max(0.0, u * std::exp(rng.Gaussian(0.0, 0.01)));
  }

  for (Resource r : resources::kAllResources) {
    // Sensitivity anchors at pressures 0.5 and 1.0 (primary resolution),
    // plus the mid-pressure benchmark slowdown at both resolutions for
    // the intensity models.
    double slowdown_a = 1.0, slowdown_b = 1.0;
    for (double pressure : {0.5, 1.0}) {
      const WorkloadProfile bench =
          microbench::MakePressureBench(r, pressure);
      const double bench_solo =
          MeasureSolo(server_, bench, rng, options_.noise_sigma);
      const std::vector<WorkloadProfile> pair{game_a, bench};
      const auto res = server_.Measure(pair, rng.Next(),
                                       options_.noise_sigma);
      const double degradation = std::min(1.0, res[0].rate / solo_a);
      if (pressure == 0.5) {
        probe.sensitivity_mid[r] = degradation;
        slowdown_a = microbench::BenchSlowdown(bench_solo, res[1].rate);
        const std::vector<WorkloadProfile> pair_b{game_b, bench};
        const auto res_b2 = server_.Measure(pair_b, rng.Next(),
                                            options_.noise_sigma);
        slowdown_b = microbench::BenchSlowdown(bench_solo, res_b2[1].rate);
      } else {
        probe.sensitivity_max[r] = degradation;
      }
    }
    const double intensity_a = std::max(0.0, slowdown_a - 1.0);
    const double intensity_b = std::max(0.0, slowdown_b - 1.0);
    probe.intensity_ref[r] = intensity_a;
    probe.intensity_model[r] = resources::PixelLinearModel::FromTwoPoints(
        res_a, intensity_a, res_b, intensity_b);
  }
  return probe;
}

std::size_t PartialProfiler::MeasurementsPerGame() const {
  // 3 solo + per resource: 2 bench solos + 2 primary colocations + 1
  // secondary colocation.
  return 3 + resources::kNumResources * 6;
}

CurveImputer::CurveImputer(std::vector<GameProfile> reference,
                           ImputerOptions options)
    : reference_(std::move(reference)), options_(options) {
  GAUGUR_CHECK_MSG(reference_.size() >= options_.num_neighbors,
                   "reference fleet smaller than num_neighbors");
  // Normalize probe features over the reference fleet.
  std::vector<std::vector<double>> features;
  features.reserve(reference_.size());
  for (const auto& profile : reference_) {
    features.push_back(ReferenceFeatures(profile));
  }
  const std::size_t d = features[0].size();
  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 0.0);
  for (const auto& f : features) {
    for (std::size_t i = 0; i < d; ++i) feature_mean_[i] += f[i];
  }
  for (auto& m : feature_mean_) m /= static_cast<double>(features.size());
  for (const auto& f : features) {
    for (std::size_t i = 0; i < d; ++i) {
      const double delta = f[i] - feature_mean_[i];
      feature_std_[i] += delta * delta;
    }
  }
  for (auto& s : feature_std_) {
    s = std::sqrt(s / static_cast<double>(features.size()));
    if (s < 1e-9) s = 1.0;
  }
}

std::vector<double> CurveImputer::ReferenceFeatures(
    const GameProfile& profile) const {
  std::vector<double> f;
  f.reserve(3 * resources::kNumResources + 1);
  for (Resource r : resources::kAllResources) {
    f.push_back(profile.intensity_ref[r]);
    f.push_back(profile.Sensitivity(r).At(0.5));
    f.push_back(profile.Sensitivity(r).Score());
  }
  f.push_back(std::log(std::max(1.0, profile.SoloFps(
                                         resources::kReferenceResolution))));
  return f;
}

std::vector<double> CurveImputer::ProbeFeatures(
    const PartialProfile& probe) const {
  std::vector<double> f;
  f.reserve(3 * resources::kNumResources + 1);
  for (Resource r : resources::kAllResources) {
    f.push_back(probe.intensity_ref[r]);
    f.push_back(probe.sensitivity_mid[r]);
    f.push_back(probe.sensitivity_max[r]);
  }
  double solo_ref = 1.0;
  // Interpolate the probe's solo FPS at the reference resolution.
  const double m_ref = resources::kReferenceResolution.Megapixels();
  for (std::size_t i = 1; i < probe.solo_fps_points.size(); ++i) {
    const auto& [m0, f0] = probe.solo_fps_points[i - 1];
    const auto& [m1, f1] = probe.solo_fps_points[i];
    if (m_ref <= m1 || i + 1 == probe.solo_fps_points.size()) {
      const double t = (m_ref - m0) / (m1 - m0);
      solo_ref = f0 + (f1 - f0) * t;
      break;
    }
  }
  f.push_back(std::log(std::max(1.0, solo_ref)));
  return f;
}

GameProfile CurveImputer::Impute(const PartialProfile& probe) const {
  // Everything the probe measured directly carries over verbatim.
  GameProfile profile;
  profile.game_id = probe.game_id;
  profile.name = probe.name;
  profile.solo_fps_points = probe.solo_fps_points;
  profile.solo_fps_model = probe.solo_fps_model;
  profile.solo_fps_ref =
      profile.SoloFps(resources::kReferenceResolution);
  profile.intensity_ref = probe.intensity_ref;
  profile.intensity_model = probe.intensity_model;
  profile.solo_utilization = probe.solo_utilization;
  profile.cpu_memory = probe.cpu_memory;
  profile.gpu_memory = probe.gpu_memory;

  // Neighbor weights from normalized probe distance.
  const auto target = ProbeFeatures(probe);
  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(reference_.size());
  for (std::size_t j = 0; j < reference_.size(); ++j) {
    const auto f = ReferenceFeatures(reference_[j]);
    double d2 = 0.0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      const double delta = (f[i] - target[i]) / feature_std_[i];
      d2 += delta * delta;
    }
    distances.emplace_back(d2 / static_cast<double>(f.size()), j);
  }
  std::partial_sort(distances.begin(),
                    distances.begin() +
                        static_cast<std::ptrdiff_t>(options_.num_neighbors),
                    distances.end());

  const std::size_t curve_points =
      reference_[0].sensitivity[0].degradation.size();
  const double h2 = options_.bandwidth * options_.bandwidth;

  for (Resource r : resources::kAllResources) {
    // Weighted curve blend over the nearest neighbors.
    std::vector<double> blended(curve_points, 0.0);
    double weight_sum = 0.0;
    for (std::size_t k = 0; k < options_.num_neighbors; ++k) {
      const auto& [d2, j] = distances[k];
      const double w = std::exp(-d2 / h2) + 1e-9;
      weight_sum += w;
      const auto& curve = reference_[j].Sensitivity(r).degradation;
      for (std::size_t i = 0; i < curve_points; ++i) {
        blended[i] += w * curve[i];
      }
    }
    for (auto& v : blended) v /= weight_sum;

    // Warp the blend so it passes through the probe's measured anchors:
    // a per-point affine nudge that is zero at pressure 0 (degradation
    // 1.0 by definition) and matches (0.5, 1.0) exactly.
    const std::size_t mid = (curve_points - 1) / 2;
    const double mid_gap = probe.sensitivity_mid[r] - blended[mid];
    const double max_gap = probe.sensitivity_max[r] - blended.back();
    SensitivityCurve warped;
    warped.degradation.resize(curve_points);
    for (std::size_t i = 0; i < curve_points; ++i) {
      const double x =
          static_cast<double>(i) / static_cast<double>(curve_points - 1);
      // Piecewise-linear correction through (0,0), (0.5,mid_gap),
      // (1,max_gap).
      const double correction =
          x <= 0.5 ? mid_gap * (x / 0.5)
                   : mid_gap + (max_gap - mid_gap) * ((x - 0.5) / 0.5);
      warped.degradation[i] =
          std::clamp(blended[i] + correction, 0.01, 1.0);
    }
    profile.sensitivity[resources::Index(r)] = std::move(warped);
  }
  return profile;
}

}  // namespace gaugur::profiling
