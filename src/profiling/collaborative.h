// Collaborative-filtering profile imputation (paper §6: Paragon/Quasar
// [13,14] "leveraged collaborative filtering techniques to reduce the
// overhead of profiling ... complementary to our work").
//
// Full contention profiling costs ~234 server measurements per game. Once
// a reference fleet of games is fully profiled, a NEW game onboarding to
// the platform can be admitted with a cheap probe:
//   * solo FPS at the three anchor resolutions (3 measurements),
//   * intensity at two resolutions (7 resources x 2, via a short
//     mid-pressure benchmark colocation each), and
//   * sensitivity at only two pressures (0.5 and 1.0) per resource
//     instead of the full k+1 grid.
// That is 45 measurements — a 5x reduction.
//
// The missing curve interior is reconstructed from the reference games:
// nearest neighbors in probe space vote on curve shape, and the blended
// curve is then anchored to the probe's directly measured points, so the
// imputation never contradicts what was actually observed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gamesim/game.h"
#include "gamesim/server_sim.h"
#include "profiling/game_profile.h"
#include "profiling/profiler.h"

namespace gaugur::profiling {

/// The cheap onboarding probe of one game.
struct PartialProfile {
  int game_id = -1;
  std::string name;

  /// Solo FPS anchors (same as the full profile).
  std::vector<std::pair<double, double>> solo_fps_points;
  resources::PixelLinearModel solo_fps_model;

  /// Intensities and their resolution models (same as the full profile —
  /// these are already cheap).
  resources::PerResource<double> intensity_ref{};
  resources::PerResource<resources::PixelLinearModel> intensity_model{};

  /// Sensitivity measured ONLY at pressures 0.5 and 1.0.
  resources::PerResource<double> sensitivity_mid{};
  resources::PerResource<double> sensitivity_max{};

  resources::PerResource<double> solo_utilization{};
  double cpu_memory = 0.0;
  double gpu_memory = 0.0;
};

/// Runs the cheap probe (45 measurements at the default granularity
/// instead of 234).
class PartialProfiler {
 public:
  PartialProfiler(const gamesim::ServerSim& server,
                  ProfilerOptions options = {});

  PartialProfile ProbeGame(const gamesim::Game& game) const;

  std::size_t MeasurementsPerGame() const;

 private:
  const gamesim::ServerSim& server_;
  ProfilerOptions options_;
};

struct ImputerOptions {
  /// Neighbors contributing curve shape.
  std::size_t num_neighbors = 5;
  /// Kernel bandwidth on normalized probe distance.
  double bandwidth = 0.5;
};

/// Reconstructs full profiles from probes using a fully profiled
/// reference fleet.
class CurveImputer {
 public:
  explicit CurveImputer(std::vector<GameProfile> reference,
                        ImputerOptions options = {});

  /// Full profile whose curves blend the nearest reference games, warped
  /// to pass through the probe's measured (0.5, 1.0) sensitivity points.
  GameProfile Impute(const PartialProfile& probe) const;

  std::size_t ReferenceSize() const { return reference_.size(); }

 private:
  std::vector<double> ProbeFeatures(const PartialProfile& probe) const;
  std::vector<double> ReferenceFeatures(const GameProfile& profile) const;

  std::vector<GameProfile> reference_;
  ImputerOptions options_;
  // Per-feature normalization (mean/std over the reference fleet).
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
};

}  // namespace gaugur::profiling
