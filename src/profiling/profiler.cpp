#include "profiling/profiler.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "microbench/pressure_bench.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gaugur::profiling {

namespace {

/// Offline-profiling telemetry: the §3.6 O(N) cost claim as live counters.
struct ProfilerMetrics {
  obs::Counter& games_profiled =
      obs::Registry::Global().GetCounter("profile.games_profiled");
  obs::Counter& curve_points =
      obs::Registry::Global().GetCounter("profile.curve_points");
  obs::Counter& solo_measurements =
      obs::Registry::Global().GetCounter("profile.solo_measurements");
  obs::Histogram& game_us =
      obs::Registry::Global().GetHistogram("profile.game_us");

  static ProfilerMetrics& Get() {
    static ProfilerMetrics metrics;
    return metrics;
  }
};

}  // namespace

using gamesim::WorkloadProfile;
using resources::Resolution;
using resources::Resource;

Profiler::Profiler(const gamesim::ServerSim& server, ProfilerOptions options)
    : server_(server), options_(options) {
  GAUGUR_CHECK(options_.pressure_granularity >= 1);
  GAUGUR_CHECK(options_.primary_res.NumPixels() !=
               options_.secondary_res.NumPixels());
}

namespace {

/// One solo measurement of a workload's rate.
double MeasureSoloRate(const gamesim::ServerSim& server,
                       const WorkloadProfile& w, common::Rng& rng,
                       double noise_sigma) {
  const std::array<WorkloadProfile, 1> solo = {w};
  return server.Measure(solo, rng.Next(), noise_sigma)[0].rate;
}

}  // namespace

GameProfile Profiler::ProfileGame(const gamesim::Game& game) const {
  obs::ScopedTimer game_timer(ProfilerMetrics::Get().game_us);
  obs::ScopedSpan span("profile.ProfileGame");
  common::Rng rng(options_.seed ^
                  (0x517cc1b727220a95ULL * static_cast<std::uint64_t>(
                                               game.id + 1)));
  GameProfile profile;
  profile.game_id = game.id;
  profile.name = game.name;
  profile.cpu_memory = game.cpu_memory;
  profile.gpu_memory = game.gpu_memory;

  const Resolution res_a = options_.primary_res;
  const Resolution res_b = options_.secondary_res;
  const WorkloadProfile game_a = game.AtResolution(res_a);
  const WorkloadProfile game_b = game.AtResolution(res_b);

  // Solo FPS at both resolutions -> Eq. 2 model, plus a third anchor for
  // the piecewise interpolation across the bottleneck kink.
  const double solo_a =
      MeasureSoloRate(server_, game_a, rng, options_.noise_sigma);
  const double solo_b =
      MeasureSoloRate(server_, game_b, rng, options_.noise_sigma);
  profile.solo_fps_ref = solo_a;
  profile.solo_fps_model =
      resources::PixelLinearModel::FromTwoPoints(res_a, solo_a, res_b, solo_b);
  const Resolution res_c = options_.tertiary_res;
  const double solo_c = MeasureSoloRate(
      server_, game.AtResolution(res_c), rng, options_.noise_sigma);
  ProfilerMetrics::Get().solo_measurements.Add(3);
  profile.solo_fps_points = {{res_a.Megapixels(), solo_a},
                             {res_b.Megapixels(), solo_b},
                             {res_c.Megapixels(), solo_c}};
  std::sort(profile.solo_fps_points.begin(), profile.solo_fps_points.end());

  // Solo utilization counters (what a real deployment reads from
  // perf counters / nvidia-smi while the game runs alone).
  profile.solo_utilization = game_a.occupancy;
  for (auto& u : profile.solo_utilization) {
    u = std::max(0.0, u * std::exp(rng.Gaussian(0.0, 0.01)));
  }

  const auto grid =
      microbench::PressureGrid(options_.pressure_granularity);

  // Sensitivity curves + intensity at the primary resolution; intensity
  // again at the secondary resolution for the Observation 7/8 fit.
  for (Resource r : resources::kAllResources) {
    SensitivityCurve curve;
    curve.degradation.reserve(grid.size());
    std::vector<double> slowdown_a, slowdown_b;
    slowdown_a.reserve(grid.size());
    slowdown_b.reserve(grid.size());

    for (double x : grid) {
      const WorkloadProfile bench = microbench::MakePressureBench(r, x);
      const double bench_solo =
          MeasureSoloRate(server_, bench, rng, options_.noise_sigma);

      {
        const std::array<WorkloadProfile, 2> pair = {game_a, bench};
        const auto res =
            server_.Measure(pair, rng.Next(), options_.noise_sigma);
        curve.degradation.push_back(std::min(1.0, res[0].rate / solo_a));
        slowdown_a.push_back(
            microbench::BenchSlowdown(bench_solo, res[1].rate));
      }
      {
        const std::array<WorkloadProfile, 2> pair = {game_b, bench};
        const auto res =
            server_.Measure(pair, rng.Next(), options_.noise_sigma);
        slowdown_b.push_back(
            microbench::BenchSlowdown(bench_solo, res[1].rate));
      }
    }
    profile.sensitivity[resources::Index(r)] = std::move(curve);

    const double intensity_a =
        std::max(0.0, common::Mean(slowdown_a) - 1.0);
    const double intensity_b =
        std::max(0.0, common::Mean(slowdown_b) - 1.0);
    profile.intensity_ref[r] = intensity_a;
    profile.intensity_model[r] = resources::PixelLinearModel::FromTwoPoints(
        res_a, intensity_a, res_b, intensity_b);
  }
  if (obs::Enabled()) {
    ProfilerMetrics& metrics = ProfilerMetrics::Get();
    metrics.games_profiled.Add(1);
    metrics.curve_points.Add(
        static_cast<std::uint64_t>(resources::kNumResources) * grid.size());
  }
  return profile;
}

std::vector<GameProfile> Profiler::ProfileCatalog(
    const gamesim::GameCatalog& catalog, common::ThreadPool* pool) const {
  std::vector<GameProfile> profiles(catalog.size());
  auto profile_one = [&](std::size_t i) {
    profiles[i] = ProfileGame(catalog[i]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, catalog.size(), profile_one);
  } else {
    for (std::size_t i = 0; i < catalog.size(); ++i) profile_one(i);
  }
  return profiles;
}

std::size_t Profiler::MeasurementsPerGame() const {
  const std::size_t grid_points =
      static_cast<std::size_t>(options_.pressure_granularity) + 1;
  // 3 solo runs + per resource per grid point: 1 bench solo + 2 colocated
  // measurements (primary + secondary resolution).
  return 3 + resources::kNumResources * grid_points * 3;
}

}  // namespace gaugur::profiling
