// Offline contention-feature profiler (paper §3.2-3.3).
//
// For each game the profiler:
//  * measures solo FPS at two resolutions and fits the Eq. 2 linear model;
//  * colocates the game with each resource's pressure benchmark at every
//    grid pressure {0, 1/k, ..., 1}, recording the game's degradation
//    (its sensitivity curve) and the benchmark's slowdown (whose mean over
//    pressures, minus one, is the game's intensity on that resource);
//  * repeats the intensity measurement at the second resolution to fit the
//    Observation 7/8 linear intensity-vs-pixels models;
//  * reads solo utilization counters for the VBP baseline.
//
// Total cost per game: 2 solo runs + R * (k+1) benchmark colocations at
// each of 2 resolutions — O(N) across the catalog, as §3.6 requires.
#pragma once

#include <cstdint>
#include <vector>

#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "profiling/game_profile.h"

namespace gaugur::common {
class ThreadPool;
}

namespace gaugur::profiling {

struct ProfilerOptions {
  /// Pressure sampling granularity k (the paper uses 10 → 11 grid points).
  int pressure_granularity = 10;
  /// The two resolutions profiled; everything else is derived linearly.
  resources::Resolution primary_res = resources::kReferenceResolution;
  resources::Resolution secondary_res = resources::k720p;
  /// Third solo-FPS anchor (one extra solo run per game) so SoloFps()
  /// can interpolate across the bottleneck kink; see GameProfile.
  resources::Resolution tertiary_res = resources::k1440p;
  /// FPS measurement noise (stddev of log-FPS over the profiling scene).
  double noise_sigma = 0.01;
  std::uint64_t seed = 1234;
};

class Profiler {
 public:
  Profiler(const gamesim::ServerSim& server, ProfilerOptions options = {});

  /// Profile a single game (deterministic in options.seed and game id).
  GameProfile ProfileGame(const gamesim::Game& game) const;

  /// Profile every game in the catalog; parallel over games when a pool
  /// is supplied.
  std::vector<GameProfile> ProfileCatalog(
      const gamesim::GameCatalog& catalog,
      common::ThreadPool* pool = nullptr) const;

  /// Number of server measurements ProfileGame performs — used by the
  /// overhead bench to validate the O(N) cost claim.
  std::size_t MeasurementsPerGame() const;

 private:
  const gamesim::ServerSim& server_;
  ProfilerOptions options_;
};

}  // namespace gaugur::profiling
