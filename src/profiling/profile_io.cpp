#include "profiling/profile_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace gaugur::profiling {

using resources::Resource;

namespace {

std::istringstream ExpectLine(std::istream& is, const std::string& expected) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string token;
    ls >> token;
    GAUGUR_CHECK_MSG(token == expected,
                     "expected '" << expected << "', got '" << token << "'");
    return ls;
  }
  GAUGUR_CHECK_MSG(false, "unexpected end of stream, wanted " << expected);
}

}  // namespace

void SaveProfile(std::ostream& os, const GameProfile& profile) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "profile " << profile.game_id << '\n';
  // Names may contain spaces; quote-free length-prefixed form.
  os << "name_len " << profile.name.size() << '\n';
  os << profile.name << '\n';
  os << "solo_fps_ref " << profile.solo_fps_ref << '\n';
  os << "solo_fps_model " << profile.solo_fps_model.intercept << ' '
     << profile.solo_fps_model.slope << '\n';
  os << "solo_fps_points " << profile.solo_fps_points.size();
  for (const auto& [mpix, fps] : profile.solo_fps_points) {
    os << ' ' << mpix << ' ' << fps;
  }
  os << '\n';
  for (Resource r : resources::kAllResources) {
    const auto& curve = profile.Sensitivity(r).degradation;
    os << "curve " << resources::Index(r) << ' ' << curve.size();
    for (double v : curve) os << ' ' << v;
    os << '\n';
  }
  os << "intensity";
  for (Resource r : resources::kAllResources) {
    os << ' ' << profile.intensity_ref[r];
  }
  os << '\n';
  os << "intensity_model";
  for (Resource r : resources::kAllResources) {
    os << ' ' << profile.intensity_model[r].intercept << ' '
       << profile.intensity_model[r].slope;
  }
  os << '\n';
  os << "utilization";
  for (Resource r : resources::kAllResources) {
    os << ' ' << profile.solo_utilization[r];
  }
  os << '\n';
  os << "memory " << profile.cpu_memory << ' ' << profile.gpu_memory << '\n';
}

GameProfile LoadProfile(std::istream& is) {
  GameProfile profile;
  ExpectLine(is, "profile") >> profile.game_id;
  std::size_t name_len = 0;
  ExpectLine(is, "name_len") >> name_len;
  // The name is the remainder of the next line (verbatim).
  std::string line;
  GAUGUR_CHECK(std::getline(is, line));
  GAUGUR_CHECK_MSG(line.size() == name_len, "name length mismatch");
  profile.name = line;
  ExpectLine(is, "solo_fps_ref") >> profile.solo_fps_ref;
  ExpectLine(is, "solo_fps_model") >> profile.solo_fps_model.intercept >>
      profile.solo_fps_model.slope;
  {
    auto ls = ExpectLine(is, "solo_fps_points");
    std::size_t n = 0;
    ls >> n;
    profile.solo_fps_points.resize(n);
    for (auto& [mpix, fps] : profile.solo_fps_points) ls >> mpix >> fps;
  }
  for (std::size_t i = 0; i < resources::kNumResources; ++i) {
    auto ls = ExpectLine(is, "curve");
    std::size_t index = 0, n = 0;
    ls >> index >> n;
    GAUGUR_CHECK(index < resources::kNumResources);
    auto& curve = profile.sensitivity[index].degradation;
    curve.resize(n);
    for (double& v : curve) ls >> v;
  }
  {
    auto ls = ExpectLine(is, "intensity");
    for (Resource r : resources::kAllResources) ls >> profile.intensity_ref[r];
  }
  {
    auto ls = ExpectLine(is, "intensity_model");
    for (Resource r : resources::kAllResources) {
      ls >> profile.intensity_model[r].intercept >>
          profile.intensity_model[r].slope;
    }
  }
  {
    auto ls = ExpectLine(is, "utilization");
    for (Resource r : resources::kAllResources) {
      ls >> profile.solo_utilization[r];
    }
  }
  ExpectLine(is, "memory") >> profile.cpu_memory >> profile.gpu_memory;
  return profile;
}

void SaveProfiles(std::ostream& os,
                  const std::vector<GameProfile>& profiles) {
  os << "profiles " << profiles.size() << '\n';
  for (const auto& profile : profiles) SaveProfile(os, profile);
}

std::vector<GameProfile> LoadProfiles(std::istream& is) {
  std::size_t count = 0;
  ExpectLine(is, "profiles") >> count;
  std::vector<GameProfile> profiles;
  profiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    profiles.push_back(LoadProfile(is));
  }
  return profiles;
}

bool SaveProfilesToFile(const std::string& path,
                        const std::vector<GameProfile>& profiles) {
  std::ofstream os(path);
  if (!os) return false;
  SaveProfiles(os, profiles);
  return static_cast<bool>(os);
}

std::vector<GameProfile> LoadProfilesFromFile(const std::string& path) {
  std::ifstream is(path);
  GAUGUR_CHECK_MSG(static_cast<bool>(is), "cannot open " << path);
  return LoadProfiles(is);
}

}  // namespace gaugur::profiling
