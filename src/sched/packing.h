// Algorithm 1 from the paper (§5.1): interference-aware request packing.
// Given the set of feasible colocations a methodology identified and a
// request count per game, repeatedly instantiate the largest feasible
// colocation whose games all still have pending requests; drop a
// colocation once some member game runs dry. The greedy is a ln(k)
// approximation of the NP-hard minimum-server packing.
#pragma once

#include <span>
#include <vector>

#include "gaugur/colocation.h"

namespace gaugur::sched {

struct PackingResult {
  /// Number of servers allocated.
  std::size_t servers_used = 0;
  /// The colocation placed on each server.
  std::vector<core::Colocation> assignments;
};

/// `feasible` must contain a singleton colocation for every game that has
/// requests (otherwise some requests could never be placed; CHECK-fails).
/// `requests[game_id]` is the number of pending requests of that game.
PackingResult PackRequests(std::span<const core::Colocation> feasible,
                           std::span<const int> requests);

}  // namespace gaugur::sched
