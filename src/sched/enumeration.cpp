#include "sched/enumeration.h"

#include <algorithm>

#include "common/check.h"

namespace gaugur::sched {

std::vector<core::Colocation> EnumerateColocations(
    std::span<const core::SessionRequest> pool, std::size_t max_size) {
  GAUGUR_CHECK(max_size >= 1);
  std::vector<core::Colocation> out;
  std::vector<std::size_t> pick;

  auto recurse = [&](auto&& self, std::size_t start) -> void {
    if (!pick.empty()) {
      core::Colocation colocation;
      colocation.reserve(pick.size());
      for (std::size_t i : pick) colocation.push_back(pool[i]);
      out.push_back(std::move(colocation));
    }
    if (pick.size() == max_size) return;
    for (std::size_t i = start; i < pool.size(); ++i) {
      pick.push_back(i);
      self(self, i + 1);
      pick.pop_back();
    }
  };
  recurse(recurse, 0);

  // Depth-first emits mixed sizes; the study wants increasing size order.
  std::stable_sort(out.begin(), out.end(),
                   [](const core::Colocation& a, const core::Colocation& b) {
                     return a.size() < b.size();
                   });
  return out;
}

std::size_t CountColocations(std::size_t pool_size, std::size_t max_size) {
  std::size_t total = 0;
  std::size_t binom = 1;
  for (std::size_t k = 1; k <= max_size && k <= pool_size; ++k) {
    binom = binom * (pool_size - k + 1) / k;
    total += binom;
  }
  return total;
}

}  // namespace gaugur::sched
