#include "sched/packing.h"

#include <algorithm>

#include "common/check.h"

namespace gaugur::sched {

PackingResult PackRequests(std::span<const core::Colocation> feasible,
                           std::span<const int> requests) {
  std::vector<int> remaining(requests.begin(), requests.end());
  long long total = 0;
  for (int r : remaining) {
    GAUGUR_CHECK(r >= 0);
    total += r;
  }

  // Validate the termination guarantee: every requested game must have a
  // singleton colocation available.
  std::vector<bool> has_singleton(remaining.size(), false);
  for (const auto& c : feasible) {
    if (c.size() == 1) {
      const auto id = static_cast<std::size_t>(c[0].game_id);
      GAUGUR_CHECK(id < has_singleton.size());
      has_singleton[id] = true;
    }
  }
  for (std::size_t g = 0; g < remaining.size(); ++g) {
    GAUGUR_CHECK_MSG(remaining[g] == 0 || has_singleton[g],
                     "game " << g << " has requests but no feasible "
                                     "singleton colocation");
  }

  // Largest-first order (Algorithm 1 always picks the max-size survivor).
  std::vector<const core::Colocation*> order;
  order.reserve(feasible.size());
  for (const auto& c : feasible) order.push_back(&c);
  std::stable_sort(order.begin(), order.end(),
                   [](const core::Colocation* a, const core::Colocation* b) {
                     return a->size() > b->size();
                   });

  PackingResult result;
  for (const core::Colocation* c : order) {
    for (;;) {
      bool all_have_requests = true;
      for (const auto& session : *c) {
        if (remaining[static_cast<std::size_t>(session.game_id)] <= 0) {
          all_have_requests = false;
          break;
        }
      }
      if (!all_have_requests) break;  // Algorithm 1: remove c from F
      for (const auto& session : *c) {
        --remaining[static_cast<std::size_t>(session.game_id)];
      }
      result.assignments.push_back(*c);
      total -= static_cast<long long>(c->size());
    }
  }
  GAUGUR_CHECK_MSG(total == 0, "packing left " << total << " requests");
  result.servers_used = result.assignments.size();
  return result;
}

}  // namespace gaugur::sched
