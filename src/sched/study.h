// Experimental setup helpers for the §5 studies: selecting the 10-game
// pool (games that are individually playable at the QoS floor, as the
// paper's randomly selected study games must be) and generating the 5000
// gaming requests distributed uniformly over the pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gaugur/features.h"
#include "gaugur/lab.h"

namespace gaugur::sched {

struct StudySetup {
  /// The selected game ids.
  std::vector<int> game_ids;
  /// One session request per selected game, at the study resolution.
  std::vector<core::SessionRequest> pool;
};

/// Randomly selects `count` games whose true solo FPS at `resolution`
/// clears `qos_fps` with a small margin. Deterministic in `seed`.
StudySetup SelectStudyGames(
    const core::ColocationLab& lab, std::size_t count, double qos_fps,
    std::uint64_t seed,
    resources::Resolution resolution = resources::kReferenceResolution);

/// `total` requests spread uniformly at random over the pool's games.
/// Returns counts indexed by game id (zero for unselected games).
std::vector<int> GenerateRequestCounts(std::size_t num_games_total,
                                       std::span<const int> game_ids,
                                       int total, std::uint64_t seed);

/// Flattens request counts into a shuffled request stream.
std::vector<core::SessionRequest> RequestStream(
    std::span<const int> counts, std::uint64_t seed,
    resources::Resolution resolution = resources::kReferenceResolution);

}  // namespace gaugur::sched
