// Colocation enumeration for the §5.1 feasibility study: all subsets of a
// game pool up to a maximum size (385 colocations for 10 games, sizes
// 1-4, matching the paper).
#pragma once

#include <span>
#include <vector>

#include "gaugur/colocation.h"

namespace gaugur::sched {

/// All non-empty subsets of `pool` with size <= max_size, in increasing
/// size order, then lexicographic by pool position.
std::vector<core::Colocation> EnumerateColocations(
    std::span<const core::SessionRequest> pool, std::size_t max_size);

/// Binomial-sum count of what EnumerateColocations returns.
std::size_t CountColocations(std::size_t pool_size, std::size_t max_size);

}  // namespace gaugur::sched
