#include "sched/methodology.h"

#include <vector>

#include "common/check.h"

namespace gaugur::sched {

using core::Colocation;
using core::SessionRequest;

bool ProfiledMemoryFits(const core::FeatureBuilder& features,
                        const Colocation& colocation) {
  double cpu_mem = 0.0, gpu_mem = 0.0;
  for (const auto& session : colocation) {
    const auto& profile = features.Profile(session.game_id);
    cpu_mem += profile.cpu_memory;
    gpu_mem += profile.gpu_memory;
  }
  return cpu_mem <= 1.0 && gpu_mem <= 1.0;
}

namespace {

/// Applies a per-victim FPS predictor to every session of a colocation.
template <typename PredictFpsFn>
bool AllSessionsMeetQos(const Colocation& colocation, double qos_fps,
                        PredictFpsFn&& predict) {
  std::vector<SessionRequest> corunners;
  corunners.reserve(colocation.size());
  for (std::size_t v = 0; v < colocation.size(); ++v) {
    corunners.clear();
    for (std::size_t j = 0; j < colocation.size(); ++j) {
      if (j != v) corunners.push_back(colocation[j]);
    }
    if (predict(colocation[v],
                std::span<const SessionRequest>(corunners)) < qos_fps) {
      return false;
    }
  }
  return true;
}

class GAugurCmMethod final : public Methodology {
 public:
  explicit GAugurCmMethod(const core::GAugurPredictor& predictor)
      : predictor_(&predictor) {}

  std::string Name() const override { return "GAugur(CM)"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    return predictor_->PredictFeasible(qos_fps, colocation);
  }

  bool CanPredictFps() const override { return predictor_->HasRm(); }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return predictor_->PredictFps(victim, corunners);
  }

 private:
  const core::GAugurPredictor* predictor_;
};

class GAugurRmMethod final : public Methodology {
 public:
  explicit GAugurRmMethod(const core::GAugurPredictor& predictor)
      : predictor_(&predictor) {}

  std::string Name() const override { return "GAugur(RM)"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    if (!ProfiledMemoryFits(predictor_->Features(), colocation)) return false;
    return AllSessionsMeetQos(
        colocation, qos_fps,
        [this](const SessionRequest& victim,
               std::span<const SessionRequest> corunners) {
          return predictor_->PredictFps(victim, corunners);
        });
  }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return predictor_->PredictFps(victim, corunners);
  }

 private:
  const core::GAugurPredictor* predictor_;
};

class SigmoidMethod final : public Methodology {
 public:
  SigmoidMethod(const core::FeatureBuilder& features,
                const baselines::SigmoidModel& model)
      : features_(&features), model_(&model) {}

  std::string Name() const override { return "Sigmoid"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    if (!ProfiledMemoryFits(*features_, colocation)) return false;
    return AllSessionsMeetQos(
        colocation, qos_fps,
        [this](const SessionRequest& victim,
               std::span<const SessionRequest> corunners) {
          return model_->PredictFps(victim, corunners.size());
        });
  }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return model_->PredictFps(victim, corunners.size());
  }

 private:
  const core::FeatureBuilder* features_;
  const baselines::SigmoidModel* model_;
};

class SmiteMethod final : public Methodology {
 public:
  SmiteMethod(const core::FeatureBuilder& features,
              const baselines::SmiteModel& model)
      : features_(&features), model_(&model) {}

  std::string Name() const override { return "SMiTe"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    if (!ProfiledMemoryFits(*features_, colocation)) return false;
    return AllSessionsMeetQos(
        colocation, qos_fps,
        [this](const SessionRequest& victim,
               std::span<const SessionRequest> corunners) {
          return model_->PredictFps(victim, corunners);
        });
  }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return model_->PredictFps(victim, corunners);
  }

 private:
  const core::FeatureBuilder* features_;
  const baselines::SmiteModel* model_;
};

class VbpMethod final : public Methodology {
 public:
  VbpMethod(const core::FeatureBuilder& features,
            const baselines::VbpModel& model)
      : features_(&features), model_(&model) {}

  std::string Name() const override { return "VBP"; }

  bool Feasible(double /*qos_fps*/,
                const Colocation& colocation) const override {
    // VBP has no QoS model; feasibility is purely capacity (including the
    // memory dimensions already inside VbpModel::Demand).
    return model_->Feasible(colocation);
  }

  bool CanPredictFps() const override { return false; }

  double PredictFps(const SessionRequest&,
                    std::span<const SessionRequest>) const override {
    GAUGUR_CHECK_MSG(false, "VBP cannot predict FPS");
  }

 private:
  [[maybe_unused]] const core::FeatureBuilder* features_;
  const baselines::VbpModel* model_;
};

}  // namespace

std::unique_ptr<Methodology> MakeGAugurCmMethod(
    const core::GAugurPredictor& predictor) {
  return std::make_unique<GAugurCmMethod>(predictor);
}

std::unique_ptr<Methodology> MakeGAugurRmMethod(
    const core::GAugurPredictor& predictor) {
  return std::make_unique<GAugurRmMethod>(predictor);
}

std::unique_ptr<Methodology> MakeSigmoidMethod(
    const core::FeatureBuilder& features,
    const baselines::SigmoidModel& model) {
  return std::make_unique<SigmoidMethod>(features, model);
}

std::unique_ptr<Methodology> MakeSmiteMethod(
    const core::FeatureBuilder& features,
    const baselines::SmiteModel& model) {
  return std::make_unique<SmiteMethod>(features, model);
}

std::unique_ptr<Methodology> MakeVbpMethod(
    const core::FeatureBuilder& features, const baselines::VbpModel& model) {
  return std::make_unique<VbpMethod>(features, model);
}

}  // namespace gaugur::sched
