#include "sched/methodology.h"

#include <vector>

#include "common/check.h"

namespace gaugur::sched {

using core::Colocation;
using core::SessionRequest;

std::vector<char> Methodology::FeasibleBatch(
    double qos_fps, std::span<const Colocation> candidates) const {
  std::vector<char> out(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out[i] = Feasible(qos_fps, candidates[i]) ? 1 : 0;
  }
  return out;
}

std::vector<double> Methodology::PredictFpsSums(
    std::span<const Colocation> candidates) const {
  std::vector<double> sums(candidates.size(), 0.0);
  std::vector<SessionRequest> corunners;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Colocation& colocation = candidates[i];
    for (std::size_t v = 0; v < colocation.size(); ++v) {
      corunners.clear();
      for (std::size_t j = 0; j < colocation.size(); ++j) {
        if (j != v) corunners.push_back(colocation[j]);
      }
      sums[i] += PredictFps(
          colocation[v], std::span<const SessionRequest>(corunners));
    }
  }
  return sums;
}

bool ProfiledMemoryFits(const core::FeatureBuilder& features,
                        const Colocation& colocation) {
  double cpu_mem = 0.0, gpu_mem = 0.0;
  for (const auto& session : colocation) {
    const auto& profile = features.Profile(session.game_id);
    cpu_mem += profile.cpu_memory;
    gpu_mem += profile.gpu_memory;
  }
  return cpu_mem <= 1.0 && gpu_mem <= 1.0;
}

namespace {

/// Applies a per-victim FPS predictor to every session of a colocation.
template <typename PredictFpsFn>
bool AllSessionsMeetQos(const Colocation& colocation, double qos_fps,
                        PredictFpsFn&& predict) {
  std::vector<SessionRequest> corunners;
  corunners.reserve(colocation.size());
  for (std::size_t v = 0; v < colocation.size(); ++v) {
    corunners.clear();
    for (std::size_t j = 0; j < colocation.size(); ++j) {
      if (j != v) corunners.push_back(colocation[j]);
    }
    if (predict(colocation[v],
                std::span<const SessionRequest>(corunners)) < qos_fps) {
      return false;
    }
  }
  return true;
}

/// Every (victim, candidate) pair flattened into core::QosQuery rows for
/// one batched predictor call; co-runner sets live in `pool` (reserved up
/// front so the spans stay valid) and query_candidate maps each query
/// back to its candidate. With `mask` non-empty, candidates with mask 0
/// are skipped.
struct VictimQueries {
  std::vector<SessionRequest> pool;
  std::vector<core::QosQuery> queries;
  std::vector<std::size_t> query_candidate;
};

VictimQueries BuildVictimQueries(std::span<const Colocation> candidates,
                                 std::span<const char> mask = {}) {
  VictimQueries vq;
  std::size_t slots = 0, count = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!mask.empty() && mask[i] == 0) continue;
    slots += candidates[i].size() * (candidates[i].size() - 1);
    count += candidates[i].size();
  }
  vq.pool.reserve(slots);
  vq.queries.reserve(count);
  vq.query_candidate.reserve(count);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!mask.empty() && mask[i] == 0) continue;
    const Colocation& colocation = candidates[i];
    for (std::size_t v = 0; v < colocation.size(); ++v) {
      const std::size_t begin = vq.pool.size();
      for (std::size_t j = 0; j < colocation.size(); ++j) {
        if (j != v) vq.pool.push_back(colocation[j]);
      }
      vq.queries.push_back(
          {colocation[v],
           std::span<const SessionRequest>(vq.pool.data() + begin,
                                           vq.pool.size() - begin)});
      vq.query_candidate.push_back(i);
    }
  }
  return vq;
}

std::vector<double> BatchedFpsSums(const core::GAugurPredictor& predictor,
                                   std::span<const Colocation> candidates) {
  const VictimQueries vq = BuildVictimQueries(candidates);
  const std::vector<double> fps = predictor.PredictFpsBatch(vq.queries);
  std::vector<double> sums(candidates.size(), 0.0);
  // Candidate-major, victim-minor query order: additions land in the same
  // order as the scalar per-victim loop.
  for (std::size_t q = 0; q < fps.size(); ++q) {
    sums[vq.query_candidate[q]] += fps[q];
  }
  return sums;
}

class GAugurCmMethod final : public Methodology {
 public:
  explicit GAugurCmMethod(const core::GAugurPredictor& predictor)
      : predictor_(&predictor) {}

  std::string Name() const override { return "GAugur(CM)"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    return predictor_->PredictFeasible(qos_fps, colocation);
  }

  std::vector<char> FeasibleBatch(
      double qos_fps,
      std::span<const Colocation> candidates) const override {
    return predictor_->ScoreCandidates(qos_fps, candidates);
  }

  bool CanPredictFps() const override { return predictor_->HasRm(); }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return predictor_->PredictFps(victim, corunners);
  }

  std::vector<double> PredictFpsSums(
      std::span<const Colocation> candidates) const override {
    return BatchedFpsSums(*predictor_, candidates);
  }

 private:
  const core::GAugurPredictor* predictor_;
};

class GAugurRmMethod final : public Methodology {
 public:
  explicit GAugurRmMethod(const core::GAugurPredictor& predictor)
      : predictor_(&predictor) {}

  std::string Name() const override { return "GAugur(RM)"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    if (!ProfiledMemoryFits(predictor_->Features(), colocation)) return false;
    return AllSessionsMeetQos(
        colocation, qos_fps,
        [this](const SessionRequest& victim,
               std::span<const SessionRequest> corunners) {
          return predictor_->PredictFps(victim, corunners);
        });
  }

  std::vector<char> FeasibleBatch(
      double qos_fps,
      std::span<const Colocation> candidates) const override {
    std::vector<char> out(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] =
          ProfiledMemoryFits(predictor_->Features(), candidates[i]) ? 1 : 0;
    }
    const VictimQueries vq = BuildVictimQueries(candidates, out);
    const std::vector<double> fps = predictor_->PredictFpsBatch(vq.queries);
    for (std::size_t q = 0; q < fps.size(); ++q) {
      if (fps[q] < qos_fps) out[vq.query_candidate[q]] = 0;
    }
    return out;
  }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return predictor_->PredictFps(victim, corunners);
  }

  std::vector<double> PredictFpsSums(
      std::span<const Colocation> candidates) const override {
    return BatchedFpsSums(*predictor_, candidates);
  }

 private:
  const core::GAugurPredictor* predictor_;
};

class SigmoidMethod final : public Methodology {
 public:
  SigmoidMethod(const core::FeatureBuilder& features,
                const baselines::SigmoidModel& model)
      : features_(&features), model_(&model) {}

  std::string Name() const override { return "Sigmoid"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    if (!ProfiledMemoryFits(*features_, colocation)) return false;
    return AllSessionsMeetQos(
        colocation, qos_fps,
        [this](const SessionRequest& victim,
               std::span<const SessionRequest> corunners) {
          return model_->PredictFps(victim, corunners.size());
        });
  }

  std::vector<char> FeasibleBatch(
      double qos_fps,
      std::span<const Colocation> candidates) const override {
    std::vector<char> out(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = ProfiledMemoryFits(*features_, candidates[i]) ? 1 : 0;
    }
    const VictimQueries vq = BuildVictimQueries(candidates, out);
    const std::vector<double> fps = model_->PredictFpsBatch(vq.queries);
    for (std::size_t q = 0; q < fps.size(); ++q) {
      if (fps[q] < qos_fps) out[vq.query_candidate[q]] = 0;
    }
    return out;
  }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return model_->PredictFps(victim, corunners.size());
  }

  std::vector<double> PredictFpsSums(
      std::span<const Colocation> candidates) const override {
    const VictimQueries vq = BuildVictimQueries(candidates);
    const std::vector<double> fps = model_->PredictFpsBatch(vq.queries);
    std::vector<double> sums(candidates.size(), 0.0);
    for (std::size_t q = 0; q < fps.size(); ++q) {
      sums[vq.query_candidate[q]] += fps[q];
    }
    return sums;
  }

 private:
  const core::FeatureBuilder* features_;
  const baselines::SigmoidModel* model_;
};

class SmiteMethod final : public Methodology {
 public:
  SmiteMethod(const core::FeatureBuilder& features,
              const baselines::SmiteModel& model)
      : features_(&features), model_(&model) {}

  std::string Name() const override { return "SMiTe"; }

  bool Feasible(double qos_fps, const Colocation& colocation) const override {
    if (!ProfiledMemoryFits(*features_, colocation)) return false;
    return AllSessionsMeetQos(
        colocation, qos_fps,
        [this](const SessionRequest& victim,
               std::span<const SessionRequest> corunners) {
          return model_->PredictFps(victim, corunners);
        });
  }

  std::vector<char> FeasibleBatch(
      double qos_fps,
      std::span<const Colocation> candidates) const override {
    std::vector<char> out(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = ProfiledMemoryFits(*features_, candidates[i]) ? 1 : 0;
    }
    const VictimQueries vq = BuildVictimQueries(candidates, out);
    const std::vector<double> fps = model_->PredictFpsBatch(vq.queries);
    for (std::size_t q = 0; q < fps.size(); ++q) {
      if (fps[q] < qos_fps) out[vq.query_candidate[q]] = 0;
    }
    return out;
  }

  double PredictFps(
      const SessionRequest& victim,
      std::span<const SessionRequest> corunners) const override {
    return model_->PredictFps(victim, corunners);
  }

  std::vector<double> PredictFpsSums(
      std::span<const Colocation> candidates) const override {
    const VictimQueries vq = BuildVictimQueries(candidates);
    const std::vector<double> fps = model_->PredictFpsBatch(vq.queries);
    std::vector<double> sums(candidates.size(), 0.0);
    for (std::size_t q = 0; q < fps.size(); ++q) {
      sums[vq.query_candidate[q]] += fps[q];
    }
    return sums;
  }

 private:
  const core::FeatureBuilder* features_;
  const baselines::SmiteModel* model_;
};

class VbpMethod final : public Methodology {
 public:
  VbpMethod(const core::FeatureBuilder& features,
            const baselines::VbpModel& model)
      : features_(&features), model_(&model) {}

  std::string Name() const override { return "VBP"; }

  bool Feasible(double /*qos_fps*/,
                const Colocation& colocation) const override {
    // VBP has no QoS model; feasibility is purely capacity (including the
    // memory dimensions already inside VbpModel::Demand).
    return model_->Feasible(colocation);
  }

  bool CanPredictFps() const override { return false; }

  double PredictFps(const SessionRequest&,
                    std::span<const SessionRequest>) const override {
    GAUGUR_CHECK_MSG(false, "VBP cannot predict FPS");
  }

 private:
  [[maybe_unused]] const core::FeatureBuilder* features_;
  const baselines::VbpModel* model_;
};

}  // namespace

std::unique_ptr<Methodology> MakeGAugurCmMethod(
    const core::GAugurPredictor& predictor) {
  return std::make_unique<GAugurCmMethod>(predictor);
}

std::unique_ptr<Methodology> MakeGAugurRmMethod(
    const core::GAugurPredictor& predictor) {
  return std::make_unique<GAugurRmMethod>(predictor);
}

std::unique_ptr<Methodology> MakeSigmoidMethod(
    const core::FeatureBuilder& features,
    const baselines::SigmoidModel& model) {
  return std::make_unique<SigmoidMethod>(features, model);
}

std::unique_ptr<Methodology> MakeSmiteMethod(
    const core::FeatureBuilder& features,
    const baselines::SmiteModel& model) {
  return std::make_unique<SmiteMethod>(features, model);
}

std::unique_ptr<Methodology> MakeVbpMethod(
    const core::FeatureBuilder& features, const baselines::VbpModel& model) {
  return std::make_unique<VbpMethod>(features, model);
}

}  // namespace gaugur::sched
