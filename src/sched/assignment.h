// Request assignment onto a fixed server fleet (paper §5.2): each gaming
// request goes to the server that maximizes the predicted average frame
// rate after assignment (equivalently: the best marginal predicted-FPS
// gain), or — for the VBP baseline — to the worst-fit server with the
// most remaining capacity.
//
// Servers with identical content are interchangeable, so the assigners
// track *groups* of servers keyed by their colocation content and memoize
// predicted scores per (content, candidate) pair. That turns the paper's
// 5000-requests x thousands-of-servers greedy into a few thousand model
// evaluations.
#pragma once

#include <span>
#include <vector>

#include "baselines/vbp_model.h"
#include "gaugur/lab.h"
#include "sched/methodology.h"

namespace gaugur::sched {

struct AssignmentOptions {
  std::size_t num_servers = 2000;
  std::size_t max_sessions_per_server = 4;
};

/// Greedy assignment by predicted FPS gain. Requires
/// method.CanPredictFps(). Returns one colocation per server (possibly
/// empty). CHECK-fails if fleet capacity < number of requests.
std::vector<core::Colocation> AssignByPredictedFps(
    const Methodology& method, const core::FeatureBuilder& features,
    std::span<const core::SessionRequest> requests,
    const AssignmentOptions& options);

/// VBP worst-fit: each request lands on the server with the largest
/// remaining capacity that still has a session slot.
std::vector<core::Colocation> AssignWorstFit(
    const baselines::VbpModel& vbp, const core::FeatureBuilder& features,
    std::span<const core::SessionRequest> requests,
    const AssignmentOptions& options);

/// Ground-truth frame rate of every assigned session (empty servers
/// contribute nothing). Memoizes by server content.
std::vector<double> EvaluateAssignment(
    const core::ColocationLab& lab,
    std::span<const core::Colocation> servers);

}  // namespace gaugur::sched
