#include "sched/assignment.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"

namespace gaugur::sched {

using core::Colocation;
using core::ColocationKey;
using core::SessionRequest;

namespace {

/// Server groups: all servers currently hosting the same colocation.
struct GroupState {
  Colocation content;
  std::size_t count = 0;
};

class GroupedFleet {
 public:
  GroupedFleet(std::size_t num_servers, std::size_t max_sessions)
      : max_sessions_(max_sessions) {
    groups_[""] = GroupState{{}, num_servers};
  }

  std::size_t MaxSessions() const { return max_sessions_; }

  /// Visits each distinct group that still has a free session slot.
  template <typename Fn>
  void ForEachOpenGroup(Fn&& fn) const {
    for (const auto& [key, group] : groups_) {
      if (group.content.size() < max_sessions_) fn(key, group);
    }
  }

  /// Moves one server from `from_key`'s group into the group holding
  /// `new_content`.
  void Move(const std::string& from_key, Colocation new_content) {
    auto it = groups_.find(from_key);
    GAUGUR_CHECK(it != groups_.end() && it->second.count > 0);
    if (--it->second.count == 0) groups_.erase(it);
    const std::string new_key = ColocationKey(new_content);
    auto& group = groups_[new_key];
    if (group.count == 0) group.content = std::move(new_content);
    ++group.count;
  }

  std::vector<Colocation> Expand() const {
    std::vector<Colocation> servers;
    for (const auto& [key, group] : groups_) {
      for (std::size_t i = 0; i < group.count; ++i) {
        servers.push_back(group.content);
      }
    }
    return servers;
  }

 private:
  std::size_t max_sessions_;
  std::unordered_map<std::string, GroupState> groups_;
};

Colocation Extend(const Colocation& content, const SessionRequest& request) {
  Colocation extended = content;
  extended.push_back(request);
  return extended;
}

}  // namespace

std::vector<Colocation> AssignByPredictedFps(
    const Methodology& method, const core::FeatureBuilder& features,
    std::span<const SessionRequest> requests,
    const AssignmentOptions& options) {
  GAUGUR_CHECK_MSG(method.CanPredictFps(),
                   method.Name() << " has no FPS model");
  GAUGUR_CHECK_MSG(
      requests.size() <= options.num_servers * options.max_sessions_per_server,
      "fleet capacity too small for the request stream");

  GroupedFleet fleet(options.num_servers, options.max_sessions_per_server);
  // Memoized predicted-FPS sums by colocation key, filled one batched
  // Methodology::PredictFpsSums call per request (below); by the time the
  // selection loop runs, every candidate's sum is memoized.
  std::unordered_map<std::string, double> fps_sum_cache;
  auto cached_sum = [&](const Colocation& colocation) {
    const auto it = fps_sum_cache.find(ColocationKey(colocation));
    GAUGUR_CHECK_MSG(it != fps_sum_cache.end(),
                     "candidate sum missing from the prefetch");
    return it->second;
  };

  for (const auto& request : requests) {
    // Prefetch pass: collect every candidate colocation this decision can
    // touch (group contents and memory-fitting extensions) whose sum is
    // not memoized yet, and score them with one batched call.
    std::vector<Colocation> uncached;
    std::vector<std::string> uncached_keys;
    auto enqueue = [&](std::string key, const Colocation& colocation) {
      if (fps_sum_cache.contains(key)) return;
      // Placeholder so duplicates within this prefetch are skipped; the
      // real value lands right after the batch call.
      fps_sum_cache.emplace(key, 0.0);
      uncached.push_back(colocation);
      uncached_keys.push_back(std::move(key));
    };
    fleet.ForEachOpenGroup([&](const std::string& key,
                               const GroupState& group) {
      const Colocation extended = Extend(group.content, request);
      if (!ProfiledMemoryFits(features, extended)) return;
      enqueue(key, group.content);
      enqueue(ColocationKey(extended), extended);
    });
    if (!uncached.empty()) {
      const std::vector<double> sums = method.PredictFpsSums(uncached);
      for (std::size_t i = 0; i < uncached.size(); ++i) {
        fps_sum_cache[uncached_keys[i]] = sums[i];
      }
    }

    std::string best_key;
    const Colocation* best_content = nullptr;
    double best_gain = -std::numeric_limits<double>::infinity();
    fleet.ForEachOpenGroup([&](const std::string& key,
                               const GroupState& group) {
      const Colocation extended = Extend(group.content, request);
      if (!ProfiledMemoryFits(features, extended)) return;
      const double gain = cached_sum(extended) - cached_sum(group.content);
      if (gain > best_gain) {
        best_gain = gain;
        best_key = key;
        best_content = &group.content;
      }
    });
    GAUGUR_CHECK_MSG(best_content != nullptr,
                     "no server can host the request (memory)");
    fleet.Move(best_key, Extend(*best_content, request));
  }
  return fleet.Expand();
}

std::vector<Colocation> AssignWorstFit(
    const baselines::VbpModel& vbp, const core::FeatureBuilder& features,
    std::span<const SessionRequest> requests,
    const AssignmentOptions& options) {
  GAUGUR_CHECK_MSG(
      requests.size() <= options.num_servers * options.max_sessions_per_server,
      "fleet capacity too small for the request stream");
  (void)features;

  GroupedFleet fleet(options.num_servers, options.max_sessions_per_server);
  std::unordered_map<std::string, double> capacity_cache;
  auto cached_capacity = [&](const std::string& key,
                             const Colocation& colocation) {
    auto it = capacity_cache.find(key);
    if (it != capacity_cache.end()) return it->second;
    const double cap = vbp.RemainingCapacity(colocation);
    capacity_cache.emplace(key, cap);
    return cap;
  };

  for (const auto& request : requests) {
    std::string best_key;
    const Colocation* best_content = nullptr;
    double best_capacity = -std::numeric_limits<double>::infinity();
    fleet.ForEachOpenGroup([&](const std::string& key,
                               const GroupState& group) {
      const double capacity = cached_capacity(key, group.content);
      if (capacity > best_capacity) {
        best_capacity = capacity;
        best_key = key;
        best_content = &group.content;
      }
    });
    GAUGUR_CHECK(best_content != nullptr);
    fleet.Move(best_key, Extend(*best_content, request));
  }
  return fleet.Expand();
}

std::vector<double> EvaluateAssignment(
    const core::ColocationLab& lab,
    std::span<const Colocation> servers) {
  std::unordered_map<std::string, std::vector<double>> fps_cache;
  std::vector<double> all_fps;
  for (const auto& server : servers) {
    if (server.empty()) continue;
    const std::string key = ColocationKey(server);
    auto it = fps_cache.find(key);
    if (it == fps_cache.end()) {
      it = fps_cache.emplace(key, lab.TrueFps(server)).first;
    }
    all_fps.insert(all_fps.end(), it->second.begin(), it->second.end());
  }
  return all_fps;
}

}  // namespace gaugur::sched
