#include "sched/dynamic.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gaugur/predictor.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/latency_profiler.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/sink.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "resources/resource.h"

namespace gaugur::sched {

using core::Colocation;
using core::SessionRequest;

namespace {

/// Fleet-scheduler telemetry: admission throughput, fleet growth, and the
/// per-decision latency that bounds request-arrival-time scheduling.
struct SchedMetrics {
  obs::Counter& placements =
      obs::Registry::Global().GetCounter("sched.placements");
  obs::Counter& powerons =
      obs::Registry::Global().GetCounter("sched.powerons");
  obs::Counter& candidates_rejected =
      obs::Registry::Global().GetCounter("sched.candidates_rejected");
  /// Log-scale buckets: decision latency spans sub-µs (dedicated policy)
  /// to tens of ms (predictor-backed policies over a large fleet), which
  /// the default linear layout cannot resolve at both ends.
  obs::Histogram& decision_us = obs::Registry::Global().GetHistogram(
      "sched.decision_us", obs::Histogram::ExponentialBounds(1.0, 2.0, 16));
  /// Sharded service: worker count of the run in flight, and arrivals not
  /// yet admitted (drains to zero as shards process their queues — the
  /// default health rules watch it for stalls).
  obs::Gauge& shards = obs::Registry::Global().GetGauge("sched.shards");
  obs::Gauge& shard_backlog =
      obs::Registry::Global().GetGauge("sched.shard_backlog");

  static SchedMetrics& Get() {
    static SchedMetrics metrics;
    return metrics;
  }
};

struct LiveSession {
  SessionRequest session;
  std::size_t request_index = 0;
  double end_min = 0.0;
};

struct LiveServer {
  std::vector<LiveSession> sessions;
  /// When this server last became non-empty (for server-minute billing).
  double powered_since = 0.0;
  bool powered = false;
  /// Decision that most recently placed a session here; violation events
  /// link back to it ("why was this colocation formed?"). 0 = none.
  std::uint64_t last_decision_id = 0;
  /// Additive Zobrist hash of the current colocation, maintained in O(1)
  /// per arrival/departure; fed to hash-aware policies through
  /// PendingOpenServerHashes so candidate cache keys never rehash the set.
  core::IncrementalColocationHash set_hash;
};

/// Memoized ground truth per colocation content. Pressures are filled
/// lazily (first obs-enabled access) — they are only needed for the fleet
/// time series, and computing them costs one equilibrium solve per slot.
struct GroundTruth {
  std::vector<double> fps;
  std::vector<resources::PerResource<double>> pressures;
  bool has_pressures = false;
};

/// One shard's half of the fleet simulation: owns its servers, departure
/// queue, ground-truth memo, RNG stream, and per-shard tallies. The
/// legacy single-threaded SimulateDynamicFleet is exactly one ShardSim in
/// `shard < 0` mode (fleet-global ids == local ids, no event tagging,
/// per-arrival health passes) — the sharded service runs N of these on
/// pinned pool workers with tick barriers between windows.
///
/// Fleet-global server ids interleave shards: shard s's k-th local server
/// is id `k * num_shards + s`, so ShardOfServer(id) recovers ownership.
class ShardSim {
 public:
  struct Config {
    const core::ColocationLab* lab = nullptr;
    std::span<const DynamicRequest> requests;
    /// This shard's arrivals: indices into `requests`, time-sorted.
    std::vector<std::size_t> order;
    DynamicOptions options;
    /// -1 = legacy mode (single thread, untagged events, health per
    /// arrival); >= 0 = sharded mode.
    int shard = -1;
    std::size_t num_shards = 1;
    std::uint64_t seed = 0;
    bool collect_latencies = false;
    /// Full-size (requests.size()) array; each shard writes only its own
    /// request indices, so concurrent shards never touch the same slot.
    long long* placements_out = nullptr;
  };

  explicit ShardSim(Config config)
      : lab_(*config.lab),
        requests_(config.requests),
        order_(std::move(config.order)),
        options_(config.options),
        shard_(config.shard),
        num_shards_(std::max<std::size_t>(config.num_shards, 1)),
        rng_(config.seed ^
             (0x9e3779b97f4a7c15ULL *
              (static_cast<std::uint64_t>(std::max(config.shard, 0)) + 1))),
        collect_latencies_(config.collect_latencies),
        placements_out_(config.placements_out),
        violated_(config.requests.size(), 0),
        shard_placements_(
            config.shard >= 0
                ? &obs::Registry::Global().GetCounter(
                      "sched.shard." + std::to_string(config.shard) +
                      ".placements")
                : nullptr) {
    GAUGUR_CHECK(options_.max_sessions_per_server >= 1);
    result_.sessions = order_.size();
  }

  /// Admits every arrival with arrival_min < window_end (departures due
  /// before each arrival are processed first, as in the legacy loop).
  void RunWindow(const PlacementPolicy& policy, double window_end) {
    while (next_arrival_ < order_.size() &&
           requests_[order_[next_arrival_]].arrival_min < window_end) {
      ProcessArrival(policy, order_[next_arrival_]);
      ++next_arrival_;
    }
  }

  /// Processes departures due by `until` (sharded mode runs this at every
  /// window boundary so monitor totals and the time series never lag a
  /// whole shard behind the barrier clock).
  void DrainUpTo(double until) {
    while (!departures_.empty() && departures_.begin()->first <= until) {
      PopDeparture(/*with_health=*/false);
    }
  }

  /// Drains every remaining departure (end of run). In legacy mode each
  /// departure also runs a health pass, like the historical drain loop.
  void FinalDrain() {
    while (!departures_.empty()) {
      PopDeparture(/*with_health=*/shard_ < 0);
    }
  }

  std::size_t LiveSessions() const { return live_sessions_; }
  double LastEventTime() const { return last_event_time_; }
  std::vector<double>& Latencies() { return latencies_; }

  DynamicResult TakeResult() {
    for (char v : violated_) result_.violated_sessions += v != 0 ? 1 : 0;
    return std::move(result_);
  }

 private:
  std::uint64_t GlobalId(std::size_t local) const {
    return shard_ < 0 ? local
                      : static_cast<std::uint64_t>(local) * num_shards_ +
                            static_cast<std::uint64_t>(shard_);
  }

  /// Adds the sharded-run shard tag (legacy events stay byte-identical).
  void TagShard(obs::JsonObject& fields) const {
    if (shard_ >= 0) fields["shard"] = obs::JsonValue(shard_);
  }

  /// Moves server `s` between the idle/open index sets after its session
  /// count changed (erase on a set the server is not in is a no-op, which
  /// also covers freshly created servers).
  void Reclassify(std::size_t s, std::size_t old_n, std::size_t new_n) {
    if (old_n == new_n) return;
    if (old_n == 0) {
      idle_.erase(s);
    } else if (old_n < options_.max_sessions_per_server) {
      open_.erase(s);
    }
    if (new_n == 0) {
      idle_.insert(s);
    } else if (new_n < options_.max_sessions_per_server) {
      open_.insert(s);
    }
  }

  void MarkViolations(std::size_t server_idx, double now) {
    LiveServer& server = servers_[server_idx];
    if (server.sessions.empty()) return;
    Colocation content;
    for (const auto& s : server.sessions) content.push_back(s.session);
    const std::string key = core::ColocationKey(content);
    auto it = fps_cache_.find(key);
    if (it == fps_cache_.end()) {
      it = fps_cache_
               .emplace(key, GroundTruth{lab_.TrueFps(content), {}, false})
               .first;
      if (obs::Enabled()) {
        // First time this colocation content actually runs: feed each
        // session's realized FPS back to the model monitor, joining any
        // audit records the policy's predictor left under the same key.
        // Cache hits are skipped so one colocation content is one outcome
        // — the same gating makes the qos_violation events below
        // reconcile 1:1 with the monitor's qos_violations_observed tally.
        std::vector<SessionRequest> corunners;
        corunners.reserve(content.size());
        for (std::size_t i = 0; i < content.size(); ++i) {
          corunners.clear();
          for (std::size_t j = 0; j < content.size(); ++j) {
            if (j != i) corunners.push_back(content[j]);
          }
          const double realized = it->second.fps[i];
          obs::OutcomeContext context;
          if (realized < options_.qos_fps) {
            // QoS dip: ask the ground-truth lab which resource's
            // contention curve drove it and which co-runner's removal
            // would buy back the most FPS, then link the violation event
            // to the decision that formed this colocation.
            const core::InterferenceAttribution attr =
                lab_.AttributeInterference(content, i);
            context.dominant_resource =
                std::string(resources::Name(attr.dominant_resource));
            context.offender_game_id = attr.offender_game_id;
            obs::JsonObject fields;
            fields["server"] = obs::JsonValue(
                static_cast<unsigned long long>(GlobalId(server_idx)));
            fields["victim_game"] = obs::JsonValue(content[i].game_id);
            fields["realized_fps"] = obs::JsonValue(realized);
            fields["qos_fps"] = obs::JsonValue(options_.qos_fps);
            fields["dominant_resource"] =
                obs::JsonValue(context.dominant_resource);
            fields["dominant_damage"] = obs::JsonValue(attr.dominant_damage);
            fields["offender_game"] = obs::JsonValue(attr.offender_game_id);
            fields["offender_fps_gain"] =
                obs::JsonValue(attr.offender_fps_gain);
            TagShard(fields);
            obs::EventLog::Global().Append(obs::EventKind::kQosViolation,
                                           now, server.last_decision_id,
                                           std::move(fields));
          }
          obs::ModelMonitor::Global().ObserveOutcome(
              core::ModelJoinKey(content[i], corunners), realized,
              options_.qos_fps, context);
        }
      }
    }
    for (std::size_t i = 0; i < server.sessions.size(); ++i) {
      if (it->second.fps[i] < options_.qos_fps) {
        violated_[server.sessions[i].request_index] = 1;
      }
    }
    if (obs::Enabled()) {
      // Sample this server's state into the fleet time series. Pressures
      // are solved once per distinct content and reused from the cache.
      if (!it->second.has_pressures) {
        it->second.pressures = lab_.TruePressures(content);
        it->second.has_pressures = true;
      }
      obs::ServerSample sample;
      sample.tick = now;
      sample.slots.reserve(server.sessions.size());
      for (std::size_t i = 0; i < server.sessions.size(); ++i) {
        obs::SlotSample slot;
        slot.game_id = content[i].game_id;
        slot.fps = it->second.fps[i];
        slot.pressure.reserve(resources::kNumResources);
        for (resources::Resource r : resources::kAllResources) {
          slot.pressure.push_back(it->second.pressures[i][r]);
        }
        sample.slots.push_back(std::move(slot));
      }
      obs::FleetTimeSeries::Global().Record(GlobalId(server_idx),
                                            std::move(sample));
    }
  }

  void BillAndUpdate(std::size_t server_idx, double now, bool now_empty) {
    LiveServer& server = servers_[server_idx];
    if (server.powered && now_empty) {
      result_.server_minutes += now - server.powered_since;
      server.powered = false;
      --live_servers_;
      if (obs::Enabled()) {
        obs::JsonObject fields;
        fields["server"] = obs::JsonValue(
            static_cast<unsigned long long>(GlobalId(server_idx)));
        TagShard(fields);
        obs::EventLog::Global().Append(obs::EventKind::kPowerOff, now,
                                       /*decision_id=*/0, std::move(fields));
        // A drained server carries no FPS deficit: record an empty sample
        // so the health engine's per-server signal resolves instead of
        // firing forever on the last occupied state.
        obs::FleetTimeSeries::Global().Record(GlobalId(server_idx),
                                              obs::ServerSample{now, {}});
      }
    } else if (!server.powered && !now_empty) {
      server.powered = true;
      server.powered_since = now;
      ++live_servers_;
      ++result_.powerons;
      SchedMetrics::Get().powerons.Add(1);
      if (obs::Enabled()) {
        obs::JsonObject fields;
        fields["server"] = obs::JsonValue(
            static_cast<unsigned long long>(GlobalId(server_idx)));
        TagShard(fields);
        obs::EventLog::Global().Append(obs::EventKind::kPowerOn, now,
                                       /*decision_id=*/0, std::move(fields));
      }
    }
    result_.peak_servers = std::max(result_.peak_servers, live_servers_);
  }

  void PopDeparture(bool with_health) {
    const auto [server_idx, request_idx] = departures_.begin()->second;
    const double when = departures_.begin()->first;
    departures_.erase(departures_.begin());
    LiveServer& server = servers_[server_idx];
    auto it = std::find_if(server.sessions.begin(), server.sessions.end(),
                           [&](const LiveSession& s) {
                             return s.request_index == request_idx;
                           });
    GAUGUR_CHECK(it != server.sessions.end());
    const std::size_t old_n = server.sessions.size();
    server.set_hash.Remove(it->session);
    server.sessions.erase(it);
    --live_sessions_;
    Reclassify(server_idx, old_n, old_n - 1);
    last_event_time_ = std::max(last_event_time_, when);
    if (obs::Enabled()) {
      obs::JsonObject fields;
      fields["server"] = obs::JsonValue(
          static_cast<unsigned long long>(GlobalId(server_idx)));
      fields["request_index"] =
          obs::JsonValue(static_cast<unsigned long long>(request_idx));
      TagShard(fields);
      obs::EventLog::Global().Append(obs::EventKind::kDeparture, when,
                                     /*decision_id=*/0, std::move(fields));
    }
    MarkViolations(server_idx, when);  // survivors' smaller colocation
    BillAndUpdate(server_idx, when, server.sessions.empty());
    if (with_health && obs::Enabled()) {
      obs::HealthEngine::Global().Evaluate(when);
    }
  }

  /// Picks the open-server candidates for one arrival: every open server
  /// (ascending index — the legacy contract) when uncapped or under the
  /// cap, else the lowest-index half of the cap plus a seeded random
  /// sample of the remaining open servers (Floyd's algorithm on this
  /// shard's RNG stream), re-sorted so the view stays ascending.
  void SelectCandidates() {
    candidate_locals_.clear();
    const std::size_t cap = options_.max_policy_candidates;
    if (cap == 0 || open_.size() <= cap) {
      candidate_locals_.assign(open_.begin(), open_.end());
      return;
    }
    scratch_.assign(open_.begin(), open_.end());
    const std::size_t prefix = cap / 2;
    candidate_locals_.assign(scratch_.begin(), scratch_.begin() + prefix);
    const std::size_t tail_n = scratch_.size() - prefix;
    const std::size_t want = cap - prefix;
    sample_.clear();
    for (std::size_t j = tail_n - want; j < tail_n; ++j) {
      const std::size_t t = rng_.UniformInt(j + 1);
      if (sample_.insert(scratch_[prefix + t]).second) continue;
      sample_.insert(scratch_[prefix + j]);
    }
    candidate_locals_.insert(candidate_locals_.end(), sample_.begin(),
                             sample_.end());
    // sample_ is an ordered set and the prefix precedes every tail
    // element, so candidate_locals_ is already ascending.
  }

  void ProcessArrival(const PlacementPolicy& policy, std::size_t oi) {
    const DynamicRequest& request = requests_[oi];
    const double now = request.arrival_min;
    last_event_time_ = std::max(last_event_time_, now);

    if (shard_ < 0 && obs::Enabled()) {
      // Legacy mode: the sim clock advances per arrival. (Sharded runs
      // tick the sink and health engine at barrier boundaries instead,
      // while every shard is quiescent.)
      if (obs::TelemetrySink* sink = obs::TelemetrySink::Active()) {
        sink->NoteTick(now);
      }
      obs::HealthEngine::Global().Evaluate(now);
    }

    // Process departures up to `now`.
    while (!departures_.empty() && departures_.begin()->first <= now) {
      PopDeparture(/*with_health=*/false);
    }

    // Flight recorder: everything from here to EndDecision below is
    // attributed to a phase (or falls into policy_select's exclusive
    // remainder). No-op unless the profiler is armed and obs is on.
    obs::LatencyProfiler::Global().BeginDecision(
        static_cast<std::size_t>(std::max(shard_, 0)));

    // Policy sees only servers with a free slot.
    {
      obs::PhaseTimer phase(obs::Phase::kCandidateEnum);
      SelectCandidates();
      open_view_.clear();
      open_index_.clear();
      std::vector<std::uint64_t>& open_hashes = PendingOpenServerHashes();
      open_hashes.clear();
      for (std::size_t s : candidate_locals_) {
        Colocation content;
        for (const auto& live : servers_[s].sessions) {
          content.push_back(live.session);
        }
        open_view_.push_back(std::move(content));
        open_index_.push_back(s);
        open_hashes.push_back(servers_[s].set_hash.Value());
      }
    }

    if (obs::Enabled()) {
      obs::PhaseTimer phase(obs::Phase::kEventEmit);
      obs::JsonObject fields;
      fields["request_index"] =
          obs::JsonValue(static_cast<unsigned long long>(oi));
      fields["game_id"] = obs::JsonValue(request.session.game_id);
      fields["pixels"] = obs::JsonValue(request.session.resolution.NumPixels());
      fields["duration_min"] = obs::JsonValue(request.duration_min);
      TagShard(fields);
      obs::EventLog::Global().Append(obs::EventKind::kArrival, now,
                                     /*decision_id=*/0, std::move(fields));
    }

    int choice;
    PendingDecisionDetail().Clear();
    {
      const auto t0 = std::chrono::steady_clock::now();
      {
        // Nested inside the decision_us span, so the phases the policy
        // records internally subtract out of policy_select's exclusive
        // time and the per-phase sum reconciles with sched.decision_us.
        obs::PhaseTimer phase(obs::Phase::kPolicySelect);
        choice = policy(open_view_, request.session);
      }
      const double us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();
      SchedMetrics::Get().decision_us.Record(us);
      if (collect_latencies_) latencies_.push_back(us);
    }
    if (obs::Enabled()) {
      SchedMetrics& metrics = SchedMetrics::Get();
      metrics.placements.Add(1);
      if (shard_placements_ != nullptr) shard_placements_->Add(1);
      if (shard_ >= 0) metrics.shard_backlog.Sub(1);
      // Open servers the policy was offered but did not pick.
      metrics.candidates_rejected.Add(open_view_.size() -
                                      (choice >= 0 ? 1 : 0));
    }
    std::size_t target;
    if (choice < 0) {
      // Reuse a powered-off slot if one exists (lowest index, like the
      // legacy first-empty scan), else grow the fleet.
      if (idle_.empty()) {
        servers_.emplace_back();
        target = servers_.size() - 1;
      } else {
        target = *idle_.begin();
      }
    } else {
      GAUGUR_CHECK_MSG(static_cast<std::size_t>(choice) < open_view_.size(),
                       "policy returned an invalid server index");
      target = open_index_[static_cast<std::size_t>(choice)];
    }
    LiveServer& server = servers_[target];
    GAUGUR_CHECK(server.sessions.size() < options_.max_sessions_per_server);
    std::uint64_t decision_id = 0;
    if (obs::Enabled()) {
      obs::PhaseTimer phase(obs::Phase::kEventEmit);
      // One decision event per arrival, carrying the policy's judgement of
      // every open candidate (when the policy published one) so a later
      // violation can be traced back to "what did the predictor believe".
      decision_id = obs::EventLog::Global().NextDecisionId();
      server.last_decision_id = decision_id;
      obs::JsonObject fields;
      fields["request_index"] =
          obs::JsonValue(static_cast<unsigned long long>(oi));
      fields["game_id"] = obs::JsonValue(request.session.game_id);
      fields["num_candidates"] =
          obs::JsonValue(static_cast<unsigned long long>(open_view_.size()));
      fields["choice"] = obs::JsonValue(choice);
      fields["target_server"] = obs::JsonValue(
          static_cast<unsigned long long>(GlobalId(target)));
      TagShard(fields);
      const DecisionDetail& detail = PendingDecisionDetail();
      if (detail.has_detail) {
        obs::JsonArray candidates;
        candidates.reserve(detail.candidates.size());
        unsigned long long queries_total = 0, cache_hits_total = 0;
        for (const CandidateJudgement& judgement : detail.candidates) {
          obs::JsonObject entry;
          entry["feasible"] = obs::JsonValue(judgement.feasible);
          entry["memory_ok"] = obs::JsonValue(judgement.memory_ok);
          entry["queries"] = obs::JsonValue(
              static_cast<unsigned long long>(judgement.queries));
          entry["cache_hits"] = obs::JsonValue(
              static_cast<unsigned long long>(judgement.cache_hits));
          entry["min_margin"] = obs::JsonValue(judgement.min_margin);
          candidates.push_back(obs::JsonValue(std::move(entry)));
          queries_total += judgement.queries;
          cache_hits_total += judgement.cache_hits;
        }
        fields["candidates"] = obs::JsonValue(std::move(candidates));
        fields["queries_total"] = obs::JsonValue(queries_total);
        fields["cache_hits_total"] = obs::JsonValue(cache_hits_total);
      }
      obs::EventLog::Global().Append(obs::EventKind::kDecision, now,
                                     decision_id, std::move(fields));
    }
    obs::LatencyProfiler::Global().EndDecision(decision_id, now);
    const std::size_t old_n = server.sessions.size();
    server.sessions.push_back(
        {request.session, oi, now + request.duration_min});
    server.set_hash.Add(request.session);
    ++live_sessions_;
    peak_live_sessions_ = std::max(peak_live_sessions_, live_sessions_);
    Reclassify(target, old_n, old_n + 1);
    if (placements_out_ != nullptr) {
      placements_out_[oi] = static_cast<long long>(GlobalId(target));
    }
    if (old_n == 0) BillAndUpdate(target, now, /*now_empty=*/false);
    MarkViolations(target, now);
    departures_.emplace(now + request.duration_min,
                        std::make_pair(target, oi));
  }

  const core::ColocationLab& lab_;
  std::span<const DynamicRequest> requests_;
  std::vector<std::size_t> order_;
  std::size_t next_arrival_ = 0;
  DynamicOptions options_;
  int shard_;
  std::size_t num_shards_;
  common::Rng rng_;
  bool collect_latencies_;
  long long* placements_out_;

  std::vector<LiveServer> servers_;
  /// Local indices of partially filled servers (0 < n < max), ordered so
  /// the per-arrival candidate view stays ascending like the legacy scan.
  std::set<std::size_t> open_;
  /// Local indices of empty (powered-off) servers; begin() is the legacy
  /// first-empty reuse choice.
  std::set<std::size_t> idle_;
  std::multimap<double, std::pair<std::size_t, std::size_t>> departures_;
  std::unordered_map<std::string, GroundTruth> fps_cache_;
  std::vector<char> violated_;
  DynamicResult result_;
  std::size_t live_servers_ = 0;
  std::size_t live_sessions_ = 0;
  std::size_t peak_live_sessions_ = 0;
  double last_event_time_ = 0.0;
  std::vector<double> latencies_;
  obs::Counter* shard_placements_;

  // Per-arrival scratch (kept across arrivals to avoid reallocation).
  std::vector<Colocation> open_view_;
  std::vector<std::size_t> open_index_;
  std::vector<std::size_t> candidate_locals_;
  std::vector<std::size_t> scratch_;
  std::set<std::size_t> sample_;
};

/// Sorts request indices by arrival time (stable on ties, like the
/// legacy loop).
std::vector<std::size_t> TimeOrder(std::span<const DynamicRequest> requests) {
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_min < requests[b].arrival_min;
                   });
  return order;
}

/// Demo health subscriber: the future drift -> retrain loop will consume
/// firing alerts exactly like this. A PSI-drift alert entering `firing`
/// is acknowledged into the provenance log, so the closed-loop substrate
/// (alert -> subscriber -> event) exists end to end.
void InstallDriftAck(std::optional<obs::SubscriptionScope>& drift_ack) {
  if (obs::Enabled() && obs::HealthEngine::Global().Armed()) {
    drift_ack.emplace(
        obs::HealthEngine::Global(), [](const obs::AlertTransition& t) {
          if (t.to != obs::AlertState::kFiring ||
              t.signal != obs::SignalKind::kMonitorPsi) {
            return;
          }
          obs::JsonObject fields;
          fields["action"] = obs::JsonValue("ack_drift");
          fields["rule"] = obs::JsonValue(t.rule);
          fields["label"] = obs::JsonValue(t.label);
          fields["value"] = obs::JsonValue(t.value);
          obs::EventLog::Global().Append(obs::EventKind::kAlert, t.tick,
                                         /*decision_id=*/0,
                                         std::move(fields));
        });
  }
}

double Quantile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[k];
}

}  // namespace

DynamicResult SimulateDynamicFleet(const core::ColocationLab& lab,
                                   std::span<const DynamicRequest> requests,
                                   const PlacementPolicy& policy,
                                   const DynamicOptions& options) {
  GAUGUR_CHECK(options.max_sessions_per_server >= 1);
  obs::ScopedSpan fleet_span("sched.SimulateDynamicFleet");
  std::optional<obs::SubscriptionScope> drift_ack;
  InstallDriftAck(drift_ack);

  std::vector<long long> placements(requests.size(), -1);
  ShardSim sim({.lab = &lab,
                .requests = requests,
                .order = TimeOrder(requests),
                .options = options,
                .shard = -1,
                .num_shards = 1,
                .seed = 0,
                .collect_latencies = false,
                .placements_out = placements.data()});
  sim.RunWindow(policy, std::numeric_limits<double>::infinity());
  sim.FinalDrain();
  DynamicResult result = sim.TakeResult();
  result.placements = std::move(placements);
  return result;
}

std::size_t FleetShardsFromEnv() {
  if (const char* env = std::getenv("GAUGUR_FLEET_SHARDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ShardedFleetResult SimulateShardedFleet(
    const core::ColocationLab& lab, std::span<const DynamicRequest> requests,
    const ShardPolicyFactory& policy_factory,
    const ShardedFleetOptions& options) {
  GAUGUR_CHECK(options.dynamic.max_sessions_per_server >= 1);
  GAUGUR_CHECK(options.tick_window_min > 0.0);
  const std::size_t num_shards = std::max<std::size_t>(options.num_shards, 1);
  obs::ScopedSpan fleet_span("sched.SimulateShardedFleet");
  std::optional<obs::SubscriptionScope> drift_ack;
  InstallDriftAck(drift_ack);

  // Route arrivals round-robin over the time-sorted order: shard i % N
  // takes the i-th arrival, so every shard sees an even slice of the
  // arrival process (same rate, same time span).
  const std::vector<std::size_t> order = TimeOrder(requests);
  std::vector<std::vector<std::size_t>> shard_orders(num_shards);
  for (std::size_t i = 0; i < order.size(); ++i) {
    shard_orders[i % num_shards].push_back(order[i]);
  }
  const double last_arrival =
      order.empty() ? 0.0 : requests[order.back()].arrival_min;

  // Barrier schedule: identical on every shard, ending strictly after the
  // last arrival so the final RunWindow admits everything.
  std::vector<double> window_ends;
  for (double t = options.tick_window_min;; t += options.tick_window_min) {
    window_ends.push_back(t);
    if (t > last_arrival) break;
  }

  std::vector<long long> placements(requests.size(), -1);
  std::vector<std::unique_ptr<ShardSim>> sims;
  std::vector<PlacementPolicy> policies;
  sims.reserve(num_shards);
  policies.reserve(num_shards);
  for (std::size_t k = 0; k < num_shards; ++k) {
    sims.push_back(std::make_unique<ShardSim>(
        ShardSim::Config{.lab = &lab,
                         .requests = requests,
                         .order = std::move(shard_orders[k]),
                         .options = options.dynamic,
                         .shard = static_cast<int>(k),
                         .num_shards = num_shards,
                         .seed = options.seed,
                         .collect_latencies =
                             options.collect_decision_latencies,
                         .placements_out = placements.data()}));
    policies.push_back(policy_factory(k));
  }

  if (obs::Enabled()) {
    SchedMetrics::Get().shards.Add(static_cast<std::int64_t>(num_shards));
    SchedMetrics::Get().shard_backlog.Add(
        static_cast<std::int64_t>(requests.size()));
  }

  // Tick barrier: when every shard has admitted its window and gone
  // quiescent, exactly one thread samples fleet-wide concurrency and runs
  // the health + telemetry-sink tick — the sharded analogue of the legacy
  // per-arrival passes.
  std::size_t ticks = 0;
  std::size_t peak_live = 0;
  // Per-window in-window work time, one slot per shard: each shard
  // writes its own slot before arriving at the barrier, and the
  // completion step below reads + resets all slots while every shard is
  // quiescent (the barrier's completion phase orders both directions).
  std::vector<double> window_busy_us(num_shards, 0.0);
  auto on_tick = [&]() noexcept {
    const double window_end =
        window_ends[std::min(ticks, window_ends.size() - 1)];
    std::size_t live = 0;
    for (const auto& sim : sims) live += sim->LiveSessions();
    peak_live = std::max(peak_live, live);
    ++ticks;
    auto& profiler = obs::LatencyProfiler::Global();
    if (profiler.Active()) {
      profiler.RecordWindow(window_busy_us);
      std::fill(window_busy_us.begin(), window_busy_us.end(), 0.0);
    }
    if (obs::Enabled()) {
      try {
        if (obs::TelemetrySink* sink = obs::TelemetrySink::Active()) {
          sink->NoteTick(window_end);
        }
        obs::HealthEngine::Global().Evaluate(window_end);
      } catch (...) {
        // A throwing health pass must not take down the barrier; the
        // run's final Evaluate will surface persistent problems.
      }
    }
  };
  std::barrier barrier(static_cast<std::ptrdiff_t>(num_shards), on_tick);

  // One dedicated worker per shard, pinned by name so every task of shard
  // k runs on worker k (the shard's state needs no locking). The pool is
  // private to this call: pinning to the global pool would deadlock the
  // barrier whenever it has fewer workers than shards.
  common::ThreadPool pool(num_shards);
  std::vector<std::exception_ptr> errors(num_shards);
  std::vector<std::future<void>> futures;
  futures.reserve(num_shards);
  for (std::size_t k = 0; k < num_shards; ++k) {
    futures.push_back(pool.SubmitNamed(
        "fleet-shard-" + std::to_string(k), [&, k] {
          auto& profiler = obs::LatencyProfiler::Global();
          for (const double window_end : window_ends) {
            const bool profiled = profiler.Active();
            if (!errors[k]) {
              try {
                const auto busy_start = profiled
                                            ? std::chrono::steady_clock::now()
                                            : std::chrono::steady_clock::
                                                  time_point{};
                sims[k]->RunWindow(policies[k], window_end);
                sims[k]->DrainUpTo(window_end);
                if (profiled) {
                  window_busy_us[k] +=
                      std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - busy_start)
                          .count();
                }
              } catch (...) {
                // Keep arriving at the barrier so no sibling deadlocks;
                // the error is rethrown on the caller's thread below.
                errors[k] = std::current_exception();
              }
            }
            if (profiled) {
              const auto wait_start = std::chrono::steady_clock::now();
              barrier.arrive_and_wait();
              profiler.RecordBarrierWait(
                  k, std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - wait_start)
                         .count());
            } else {
              barrier.arrive_and_wait();
            }
          }
          if (!errors[k]) {
            try {
              sims[k]->FinalDrain();
            } catch (...) {
              errors[k] = std::current_exception();
            }
          }
        }));
  }
  for (auto& f : futures) f.wait();

  if (obs::Enabled()) {
    SchedMetrics::Get().shards.Sub(static_cast<std::int64_t>(num_shards));
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  ShardedFleetResult out;
  out.num_shards = num_shards;
  out.ticks = ticks;
  out.peak_concurrent_sessions = peak_live;
  out.per_shard.reserve(num_shards);
  std::vector<double> all_latencies;
  double last_event = 0.0;
  for (std::size_t k = 0; k < num_shards; ++k) {
    last_event = std::max(last_event, sims[k]->LastEventTime());
    all_latencies.insert(all_latencies.end(), sims[k]->Latencies().begin(),
                         sims[k]->Latencies().end());
    out.per_shard.push_back(sims[k]->TakeResult());
    const DynamicResult& shard = out.per_shard.back();
    out.total.server_minutes += shard.server_minutes;
    out.total.peak_servers += shard.peak_servers;
    out.total.sessions += shard.sessions;
    out.total.violated_sessions += shard.violated_sessions;
    out.total.powerons += shard.powerons;
  }
  out.total.placements = std::move(placements);
  out.decision_latency_p50_us = Quantile(all_latencies, 0.50);
  out.decision_latency_p99_us = Quantile(all_latencies, 0.99);
  if (obs::Enabled()) {
    // One final pass after the drain, like the legacy loop's tail.
    obs::HealthEngine::Global().Evaluate(
        std::max(last_event, window_ends.back()));
  }
  return out;
}

std::vector<DynamicRequest> GenerateDynamicTrace(
    std::span<const int> game_ids, double horizon_min,
    double arrivals_per_min, double mean_duration_min, std::uint64_t seed,
    resources::Resolution resolution) {
  GAUGUR_CHECK(!game_ids.empty());
  GAUGUR_CHECK(arrivals_per_min > 0.0 && mean_duration_min > 0.0);
  common::Rng rng(seed);
  std::vector<DynamicRequest> trace;
  double now = 0.0;
  for (;;) {
    // Exponential inter-arrival gap.
    now += -std::log(1.0 - rng.Uniform()) / arrivals_per_min;
    if (now >= horizon_min) break;
    DynamicRequest request;
    request.arrival_min = now;
    // Log-normal-ish duration: median ~ mean/1.3, heavy right tail.
    request.duration_min = std::max(
        2.0, mean_duration_min * std::exp(rng.Gaussian(-0.25, 0.7)));
    request.session = {game_ids[rng.UniformInt(game_ids.size())],
                       resolution};
    trace.push_back(request);
  }
  return trace;
}

PlacementPolicy MakeFirstFeasiblePolicy(
    std::function<bool(const core::Colocation&)> feasible) {
  return [feasible = std::move(feasible)](
             std::span<const Colocation> open_servers,
             const SessionRequest& arrival) -> int {
    for (std::size_t s = 0; s < open_servers.size(); ++s) {
      Colocation extended = open_servers[s];
      extended.push_back(arrival);
      if (feasible(extended)) return static_cast<int>(s);
    }
    return -1;
  };
}

PlacementPolicy MakeBatchFeasiblePolicy(BatchFeasibility feasible) {
  return [feasible = std::move(feasible)](
             std::span<const Colocation> open_servers,
             const SessionRequest& arrival) -> int {
    if (open_servers.empty()) return -1;
    std::vector<Colocation> candidates;
    candidates.reserve(open_servers.size());
    for (const Colocation& content : open_servers) {
      Colocation extended = content;
      extended.push_back(arrival);
      candidates.push_back(std::move(extended));
    }
    const std::vector<char> verdict = feasible(candidates);
    for (std::size_t s = 0; s < verdict.size(); ++s) {
      if (verdict[s] != 0) return static_cast<int>(s);
    }
    return -1;
  };
}

PlacementPolicy MakeDedicatedPolicy() {
  return [](std::span<const Colocation>, const SessionRequest&) -> int {
    return -1;
  };
}

DecisionDetail& PendingDecisionDetail() {
  thread_local DecisionDetail detail;
  return detail;
}

std::vector<std::uint64_t>& PendingOpenServerHashes() {
  thread_local std::vector<std::uint64_t> hashes;
  return hashes;
}

namespace {

/// Shared core of MakeProvenancePolicy / MakeReplicatedProvenanceFactory:
/// first-feasible over ScoreCandidatesDetailed, publishing per-candidate
/// provenance, with candidate cache keys derived from the simulator's
/// incremental open-server hashes when available.
int ProvenancePlacement(const core::GAugurPredictor& predictor,
                        double qos_fps,
                        std::span<const Colocation> open_servers,
                        const SessionRequest& arrival) {
  if (open_servers.empty()) {
    // Still one arrival for the prediction cache's reuse window.
    predictor.AdvanceArrivalEpoch();
    return -1;
  }
  std::vector<Colocation> candidates;
  std::vector<std::uint64_t> set_hashes;
  {
    obs::PhaseTimer phase(obs::Phase::kColocationHash);
    candidates.reserve(open_servers.size());
    for (const Colocation& content : open_servers) {
      Colocation extended = content;
      extended.push_back(arrival);
      candidates.push_back(std::move(extended));
    }
    // The simulator publishes each open server's additive colocation
    // hash; extending a candidate with the arrival is one O(1) hash
    // addition, so scoring never rehashes a co-runner set.
    const std::vector<std::uint64_t>& open_hashes = PendingOpenServerHashes();
    if (open_hashes.size() == open_servers.size()) {
      set_hashes.reserve(open_hashes.size());
      const std::uint64_t arrival_hash = core::SessionHash(arrival);
      for (const std::uint64_t h : open_hashes) {
        set_hashes.push_back(h + arrival_hash);
      }
    }
  }
  const std::vector<core::CandidateScore> scores =
      predictor.ScoreCandidatesDetailed(qos_fps, candidates, set_hashes);
  DecisionDetail& detail = PendingDecisionDetail();
  detail.Clear();
  if (obs::Enabled()) {
    detail.has_detail = true;
    detail.candidates.reserve(scores.size());
    for (const core::CandidateScore& score : scores) {
      detail.candidates.push_back({score.feasible, score.memory_ok,
                                   score.queries, score.cache_hits,
                                   score.min_margin});
    }
  }
  for (std::size_t s = 0; s < scores.size(); ++s) {
    if (scores[s].feasible) return static_cast<int>(s);
  }
  return -1;
}

}  // namespace

PlacementPolicy MakeProvenancePolicy(const core::GAugurPredictor& predictor,
                                     double qos_fps) {
  return [&predictor, qos_fps](std::span<const Colocation> open_servers,
                               const SessionRequest& arrival) -> int {
    return ProvenancePlacement(predictor, qos_fps, open_servers, arrival);
  };
}

ShardPolicyFactory MakeReplicatedProvenanceFactory(
    const core::GAugurPredictor& predictor, double qos_fps) {
  return [&predictor, qos_fps](std::size_t) -> PlacementPolicy {
    // Each shard's policy owns its replica (shared models, shared striped
    // cache); the shared_ptr keeps it alive inside the copyable lambda.
    auto replica =
        std::make_shared<core::GAugurPredictor>(predictor.MakeReplica());
    return [replica = std::move(replica), qos_fps](
               std::span<const Colocation> open_servers,
               const SessionRequest& arrival) -> int {
      return ProvenancePlacement(*replica, qos_fps, open_servers, arrival);
    };
  };
}

}  // namespace gaugur::sched
