#include "sched/dynamic.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/trace.h"

namespace gaugur::sched {

using core::Colocation;
using core::SessionRequest;

namespace {

/// Fleet-scheduler telemetry: admission throughput, fleet growth, and the
/// per-decision latency that bounds request-arrival-time scheduling.
struct SchedMetrics {
  obs::Counter& placements =
      obs::Registry::Global().GetCounter("sched.placements");
  obs::Counter& powerons =
      obs::Registry::Global().GetCounter("sched.powerons");
  obs::Counter& candidates_rejected =
      obs::Registry::Global().GetCounter("sched.candidates_rejected");
  /// Log-scale buckets: decision latency spans sub-µs (dedicated policy)
  /// to tens of ms (predictor-backed policies over a large fleet), which
  /// the default linear layout cannot resolve at both ends.
  obs::Histogram& decision_us = obs::Registry::Global().GetHistogram(
      "sched.decision_us", obs::Histogram::ExponentialBounds(1.0, 2.0, 16));

  static SchedMetrics& Get() {
    static SchedMetrics metrics;
    return metrics;
  }
};

struct LiveSession {
  SessionRequest session;
  std::size_t request_index = 0;
  double end_min = 0.0;
};

struct LiveServer {
  std::vector<LiveSession> sessions;
  /// When this server last became non-empty (for server-minute billing).
  double powered_since = 0.0;
  bool powered = false;
};

/// Event: +1 arrival of request i, or -1 departure from server s.
struct Event {
  double time = 0.0;
  bool is_arrival = false;
  std::size_t index = 0;  // request index (arrival) or sequence breaker
};

}  // namespace

DynamicResult SimulateDynamicFleet(const core::ColocationLab& lab,
                                   std::span<const DynamicRequest> requests,
                                   const PlacementPolicy& policy,
                                   const DynamicOptions& options) {
  GAUGUR_CHECK(options.max_sessions_per_server >= 1);
  obs::ScopedSpan fleet_span("sched.SimulateDynamicFleet");

  // Sort arrivals by time (stable for determinism on ties).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_min < requests[b].arrival_min;
                   });

  std::vector<LiveServer> servers;
  std::vector<char> violated(requests.size(), 0);
  // Memoized ground-truth QoS check per colocation content.
  std::unordered_map<std::string, std::vector<double>> fps_cache;
  auto mark_violations = [&](LiveServer& server) {
    if (server.sessions.empty()) return;
    Colocation content;
    for (const auto& s : server.sessions) content.push_back(s.session);
    const std::string key = core::ColocationKey(content);
    auto it = fps_cache.find(key);
    if (it == fps_cache.end()) {
      it = fps_cache.emplace(key, lab.TrueFps(content)).first;
      if (obs::Enabled()) {
        // First time this colocation content actually runs: feed each
        // session's realized FPS back to the model monitor, joining any
        // audit records the policy's predictor left under the same key.
        // Cache hits are skipped so one colocation content is one outcome.
        std::vector<SessionRequest> corunners;
        corunners.reserve(content.size());
        for (std::size_t i = 0; i < content.size(); ++i) {
          corunners.clear();
          for (std::size_t j = 0; j < content.size(); ++j) {
            if (j != i) corunners.push_back(content[j]);
          }
          obs::ModelMonitor::Global().ObserveOutcome(
              core::ModelJoinKey(content[i], corunners), it->second[i],
              options.qos_fps);
        }
      }
    }
    for (std::size_t i = 0; i < server.sessions.size(); ++i) {
      if (it->second[i] < options.qos_fps) {
        violated[server.sessions[i].request_index] = 1;
      }
    }
  };

  DynamicResult result;
  result.sessions = requests.size();

  // Departure queue: (time, server index, request index).
  std::multimap<double, std::pair<std::size_t, std::size_t>> departures;

  std::size_t live_servers = 0;
  auto bill_and_update = [&](std::size_t server_idx, double now,
                             bool now_empty) {
    LiveServer& server = servers[server_idx];
    if (server.powered && now_empty) {
      result.server_minutes += now - server.powered_since;
      server.powered = false;
      --live_servers;
    } else if (!server.powered && !now_empty) {
      server.powered = true;
      server.powered_since = now;
      ++live_servers;
      ++result.powerons;
      SchedMetrics::Get().powerons.Add(1);
    }
    result.peak_servers = std::max(result.peak_servers, live_servers);
  };

  std::vector<Colocation> open_view;
  std::vector<std::size_t> open_index;

  for (std::size_t oi : order) {
    const DynamicRequest& request = requests[oi];
    const double now = request.arrival_min;

    // Process departures up to `now`.
    while (!departures.empty() && departures.begin()->first <= now) {
      const auto [server_idx, request_idx] = departures.begin()->second;
      const double when = departures.begin()->first;
      departures.erase(departures.begin());
      LiveServer& server = servers[server_idx];
      auto it = std::find_if(server.sessions.begin(), server.sessions.end(),
                             [&](const LiveSession& s) {
                               return s.request_index == request_idx;
                             });
      GAUGUR_CHECK(it != server.sessions.end());
      server.sessions.erase(it);
      mark_violations(server);  // the survivors' new (smaller) colocation
      bill_and_update(server_idx, when, server.sessions.empty());
    }

    // Policy sees only servers with a free slot.
    open_view.clear();
    open_index.clear();
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (servers[s].sessions.empty() ||
          servers[s].sessions.size() >= options.max_sessions_per_server) {
        continue;
      }
      Colocation content;
      for (const auto& live : servers[s].sessions) {
        content.push_back(live.session);
      }
      open_view.push_back(std::move(content));
      open_index.push_back(s);
    }

    int choice;
    {
      obs::ScopedTimer decision_timer(SchedMetrics::Get().decision_us);
      choice = policy(open_view, request.session);
    }
    if (obs::Enabled()) {
      SchedMetrics& metrics = SchedMetrics::Get();
      metrics.placements.Add(1);
      // Open servers the policy was offered but did not pick.
      metrics.candidates_rejected.Add(open_view.size() -
                                      (choice >= 0 ? 1 : 0));
    }
    std::size_t target;
    if (choice < 0) {
      // Reuse a powered-off slot if one exists, else grow the fleet.
      auto idle = std::find_if(servers.begin(), servers.end(),
                               [](const LiveServer& s) {
                                 return s.sessions.empty();
                               });
      if (idle == servers.end()) {
        servers.emplace_back();
        target = servers.size() - 1;
      } else {
        target = static_cast<std::size_t>(idle - servers.begin());
      }
    } else {
      GAUGUR_CHECK_MSG(static_cast<std::size_t>(choice) < open_view.size(),
                       "policy returned an invalid server index");
      target = open_index[static_cast<std::size_t>(choice)];
    }
    LiveServer& server = servers[target];
    GAUGUR_CHECK(server.sessions.size() < options.max_sessions_per_server);
    const bool was_empty = server.sessions.empty();
    server.sessions.push_back(
        {request.session, oi, now + request.duration_min});
    if (was_empty) bill_and_update(target, now, /*now_empty=*/false);
    mark_violations(server);
    departures.emplace(now + request.duration_min, std::make_pair(target, oi));
  }

  // Drain remaining departures.
  while (!departures.empty()) {
    const auto [server_idx, request_idx] = departures.begin()->second;
    const double when = departures.begin()->first;
    departures.erase(departures.begin());
    LiveServer& server = servers[server_idx];
    auto it = std::find_if(server.sessions.begin(), server.sessions.end(),
                           [&](const LiveSession& s) {
                             return s.request_index == request_idx;
                           });
    GAUGUR_CHECK(it != server.sessions.end());
    server.sessions.erase(it);
    mark_violations(server);
    bill_and_update(server_idx, when, server.sessions.empty());
  }

  for (char v : violated) result.violated_sessions += v != 0 ? 1 : 0;
  return result;
}

std::vector<DynamicRequest> GenerateDynamicTrace(
    std::span<const int> game_ids, double horizon_min,
    double arrivals_per_min, double mean_duration_min, std::uint64_t seed,
    resources::Resolution resolution) {
  GAUGUR_CHECK(!game_ids.empty());
  GAUGUR_CHECK(arrivals_per_min > 0.0 && mean_duration_min > 0.0);
  common::Rng rng(seed);
  std::vector<DynamicRequest> trace;
  double now = 0.0;
  for (;;) {
    // Exponential inter-arrival gap.
    now += -std::log(1.0 - rng.Uniform()) / arrivals_per_min;
    if (now >= horizon_min) break;
    DynamicRequest request;
    request.arrival_min = now;
    // Log-normal-ish duration: median ~ mean/1.3, heavy right tail.
    request.duration_min = std::max(
        2.0, mean_duration_min * std::exp(rng.Gaussian(-0.25, 0.7)));
    request.session = {game_ids[rng.UniformInt(game_ids.size())],
                       resolution};
    trace.push_back(request);
  }
  return trace;
}

PlacementPolicy MakeFirstFeasiblePolicy(
    std::function<bool(const core::Colocation&)> feasible) {
  return [feasible = std::move(feasible)](
             std::span<const Colocation> open_servers,
             const SessionRequest& arrival) -> int {
    for (std::size_t s = 0; s < open_servers.size(); ++s) {
      Colocation extended = open_servers[s];
      extended.push_back(arrival);
      if (feasible(extended)) return static_cast<int>(s);
    }
    return -1;
  };
}

PlacementPolicy MakeBatchFeasiblePolicy(BatchFeasibility feasible) {
  return [feasible = std::move(feasible)](
             std::span<const Colocation> open_servers,
             const SessionRequest& arrival) -> int {
    if (open_servers.empty()) return -1;
    std::vector<Colocation> candidates;
    candidates.reserve(open_servers.size());
    for (const Colocation& content : open_servers) {
      Colocation extended = content;
      extended.push_back(arrival);
      candidates.push_back(std::move(extended));
    }
    const std::vector<char> verdict = feasible(candidates);
    for (std::size_t s = 0; s < verdict.size(); ++s) {
      if (verdict[s] != 0) return static_cast<int>(s);
    }
    return -1;
  };
}

PlacementPolicy MakeDedicatedPolicy() {
  return [](std::span<const Colocation>, const SessionRequest&) -> int {
    return -1;
  };
}

}  // namespace gaugur::sched
