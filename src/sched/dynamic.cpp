#include "sched/dynamic.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"
#include "gaugur/predictor.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/sink.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "resources/resource.h"

namespace gaugur::sched {

using core::Colocation;
using core::SessionRequest;

namespace {

/// Fleet-scheduler telemetry: admission throughput, fleet growth, and the
/// per-decision latency that bounds request-arrival-time scheduling.
struct SchedMetrics {
  obs::Counter& placements =
      obs::Registry::Global().GetCounter("sched.placements");
  obs::Counter& powerons =
      obs::Registry::Global().GetCounter("sched.powerons");
  obs::Counter& candidates_rejected =
      obs::Registry::Global().GetCounter("sched.candidates_rejected");
  /// Log-scale buckets: decision latency spans sub-µs (dedicated policy)
  /// to tens of ms (predictor-backed policies over a large fleet), which
  /// the default linear layout cannot resolve at both ends.
  obs::Histogram& decision_us = obs::Registry::Global().GetHistogram(
      "sched.decision_us", obs::Histogram::ExponentialBounds(1.0, 2.0, 16));

  static SchedMetrics& Get() {
    static SchedMetrics metrics;
    return metrics;
  }
};

struct LiveSession {
  SessionRequest session;
  std::size_t request_index = 0;
  double end_min = 0.0;
};

struct LiveServer {
  std::vector<LiveSession> sessions;
  /// When this server last became non-empty (for server-minute billing).
  double powered_since = 0.0;
  bool powered = false;
  /// Decision that most recently placed a session here; violation events
  /// link back to it ("why was this colocation formed?"). 0 = none.
  std::uint64_t last_decision_id = 0;
};

/// Memoized ground truth per colocation content. Pressures are filled
/// lazily (first obs-enabled access) — they are only needed for the fleet
/// time series, and computing them costs one equilibrium solve per slot.
struct GroundTruth {
  std::vector<double> fps;
  std::vector<resources::PerResource<double>> pressures;
  bool has_pressures = false;
};

/// Event: +1 arrival of request i, or -1 departure from server s.
struct Event {
  double time = 0.0;
  bool is_arrival = false;
  std::size_t index = 0;  // request index (arrival) or sequence breaker
};

}  // namespace

DynamicResult SimulateDynamicFleet(const core::ColocationLab& lab,
                                   std::span<const DynamicRequest> requests,
                                   const PlacementPolicy& policy,
                                   const DynamicOptions& options) {
  GAUGUR_CHECK(options.max_sessions_per_server >= 1);
  obs::ScopedSpan fleet_span("sched.SimulateDynamicFleet");

  // Demo health subscriber: the future drift -> retrain loop will consume
  // firing alerts exactly like this. For now a PSI-drift alert entering
  // `firing` is acknowledged into the provenance log, so the closed-loop
  // substrate (alert -> subscriber -> event) exists end to end.
  std::optional<obs::SubscriptionScope> drift_ack;
  if (obs::Enabled() && obs::HealthEngine::Global().Armed()) {
    drift_ack.emplace(
        obs::HealthEngine::Global(), [](const obs::AlertTransition& t) {
          if (t.to != obs::AlertState::kFiring ||
              t.signal != obs::SignalKind::kMonitorPsi) {
            return;
          }
          obs::JsonObject fields;
          fields["action"] = obs::JsonValue("ack_drift");
          fields["rule"] = obs::JsonValue(t.rule);
          fields["label"] = obs::JsonValue(t.label);
          fields["value"] = obs::JsonValue(t.value);
          obs::EventLog::Global().Append(obs::EventKind::kAlert, t.tick,
                                         /*decision_id=*/0,
                                         std::move(fields));
        });
  }

  // Sort arrivals by time (stable for determinism on ties).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_min < requests[b].arrival_min;
                   });

  std::vector<LiveServer> servers;
  std::vector<char> violated(requests.size(), 0);
  // Memoized ground-truth QoS check per colocation content.
  std::unordered_map<std::string, GroundTruth> fps_cache;
  auto mark_violations = [&](std::size_t server_idx, double now) {
    LiveServer& server = servers[server_idx];
    if (server.sessions.empty()) return;
    Colocation content;
    for (const auto& s : server.sessions) content.push_back(s.session);
    const std::string key = core::ColocationKey(content);
    auto it = fps_cache.find(key);
    if (it == fps_cache.end()) {
      it = fps_cache.emplace(key, GroundTruth{lab.TrueFps(content), {}, false})
               .first;
      if (obs::Enabled()) {
        // First time this colocation content actually runs: feed each
        // session's realized FPS back to the model monitor, joining any
        // audit records the policy's predictor left under the same key.
        // Cache hits are skipped so one colocation content is one outcome
        // — the same gating makes the qos_violation events below
        // reconcile 1:1 with the monitor's qos_violations_observed tally.
        std::vector<SessionRequest> corunners;
        corunners.reserve(content.size());
        for (std::size_t i = 0; i < content.size(); ++i) {
          corunners.clear();
          for (std::size_t j = 0; j < content.size(); ++j) {
            if (j != i) corunners.push_back(content[j]);
          }
          const double realized = it->second.fps[i];
          obs::OutcomeContext context;
          if (realized < options.qos_fps) {
            // QoS dip: ask the ground-truth lab which resource's
            // contention curve drove it and which co-runner's removal
            // would buy back the most FPS, then link the violation event
            // to the decision that formed this colocation.
            const core::InterferenceAttribution attr =
                lab.AttributeInterference(content, i);
            context.dominant_resource =
                std::string(resources::Name(attr.dominant_resource));
            context.offender_game_id = attr.offender_game_id;
            obs::JsonObject fields;
            fields["server"] = obs::JsonValue(
                static_cast<unsigned long long>(server_idx));
            fields["victim_game"] = obs::JsonValue(content[i].game_id);
            fields["realized_fps"] = obs::JsonValue(realized);
            fields["qos_fps"] = obs::JsonValue(options.qos_fps);
            fields["dominant_resource"] =
                obs::JsonValue(context.dominant_resource);
            fields["dominant_damage"] = obs::JsonValue(attr.dominant_damage);
            fields["offender_game"] = obs::JsonValue(attr.offender_game_id);
            fields["offender_fps_gain"] =
                obs::JsonValue(attr.offender_fps_gain);
            obs::EventLog::Global().Append(obs::EventKind::kQosViolation, now,
                                           server.last_decision_id,
                                           std::move(fields));
          }
          obs::ModelMonitor::Global().ObserveOutcome(
              core::ModelJoinKey(content[i], corunners), realized,
              options.qos_fps, context);
        }
      }
    }
    for (std::size_t i = 0; i < server.sessions.size(); ++i) {
      if (it->second.fps[i] < options.qos_fps) {
        violated[server.sessions[i].request_index] = 1;
      }
    }
    if (obs::Enabled()) {
      // Sample this server's state into the fleet time series. Pressures
      // are solved once per distinct content and reused from the cache.
      if (!it->second.has_pressures) {
        it->second.pressures = lab.TruePressures(content);
        it->second.has_pressures = true;
      }
      obs::ServerSample sample;
      sample.tick = now;
      sample.slots.reserve(server.sessions.size());
      for (std::size_t i = 0; i < server.sessions.size(); ++i) {
        obs::SlotSample slot;
        slot.game_id = content[i].game_id;
        slot.fps = it->second.fps[i];
        slot.pressure.reserve(resources::kNumResources);
        for (resources::Resource r : resources::kAllResources) {
          slot.pressure.push_back(it->second.pressures[i][r]);
        }
        sample.slots.push_back(std::move(slot));
      }
      obs::FleetTimeSeries::Global().Record(server_idx, std::move(sample));
    }
  };

  DynamicResult result;
  result.sessions = requests.size();

  // Departure queue: (time, server index, request index).
  std::multimap<double, std::pair<std::size_t, std::size_t>> departures;

  std::size_t live_servers = 0;
  auto bill_and_update = [&](std::size_t server_idx, double now,
                             bool now_empty) {
    LiveServer& server = servers[server_idx];
    if (server.powered && now_empty) {
      result.server_minutes += now - server.powered_since;
      server.powered = false;
      --live_servers;
      if (obs::Enabled()) {
        obs::EventLog::Global().Append(
            obs::EventKind::kPowerOff, now, /*decision_id=*/0,
            {{"server", obs::JsonValue(
                            static_cast<unsigned long long>(server_idx))}});
        // A drained server carries no FPS deficit: record an empty sample
        // so the health engine's per-server signal resolves instead of
        // firing forever on the last occupied state.
        obs::FleetTimeSeries::Global().Record(server_idx,
                                              obs::ServerSample{now, {}});
      }
    } else if (!server.powered && !now_empty) {
      server.powered = true;
      server.powered_since = now;
      ++live_servers;
      ++result.powerons;
      SchedMetrics::Get().powerons.Add(1);
      if (obs::Enabled()) {
        obs::EventLog::Global().Append(
            obs::EventKind::kPowerOn, now, /*decision_id=*/0,
            {{"server", obs::JsonValue(
                            static_cast<unsigned long long>(server_idx))}});
      }
    }
    result.peak_servers = std::max(result.peak_servers, live_servers);
  };

  std::vector<Colocation> open_view;
  std::vector<std::size_t> open_index;

  for (std::size_t oi : order) {
    const DynamicRequest& request = requests[oi];
    const double now = request.arrival_min;

    if (obs::Enabled()) {
      // When a streaming sink is attached, the background writer drains
      // the event rings as the run progresses — the fleet simulator no
      // longer holds the full history in memory. The sink only needs to
      // learn the sim clock for stamping metrics-delta lines.
      if (obs::TelemetrySink* sink = obs::TelemetrySink::Active()) {
        sink->NoteTick(now);
      }
      // One health pass per sim tick: rules watch the registry, model
      // monitor, per-server FPS, and sink counters as the run unfolds.
      obs::HealthEngine::Global().Evaluate(now);
    }

    // Process departures up to `now`.
    while (!departures.empty() && departures.begin()->first <= now) {
      const auto [server_idx, request_idx] = departures.begin()->second;
      const double when = departures.begin()->first;
      departures.erase(departures.begin());
      LiveServer& server = servers[server_idx];
      auto it = std::find_if(server.sessions.begin(), server.sessions.end(),
                             [&](const LiveSession& s) {
                               return s.request_index == request_idx;
                             });
      GAUGUR_CHECK(it != server.sessions.end());
      server.sessions.erase(it);
      if (obs::Enabled()) {
        obs::EventLog::Global().Append(
            obs::EventKind::kDeparture, when, /*decision_id=*/0,
            {{"server",
              obs::JsonValue(static_cast<unsigned long long>(server_idx))},
             {"request_index",
              obs::JsonValue(static_cast<unsigned long long>(request_idx))}});
      }
      mark_violations(server_idx, when);  // survivors' smaller colocation
      bill_and_update(server_idx, when, server.sessions.empty());
    }

    // Policy sees only servers with a free slot.
    open_view.clear();
    open_index.clear();
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (servers[s].sessions.empty() ||
          servers[s].sessions.size() >= options.max_sessions_per_server) {
        continue;
      }
      Colocation content;
      for (const auto& live : servers[s].sessions) {
        content.push_back(live.session);
      }
      open_view.push_back(std::move(content));
      open_index.push_back(s);
    }

    if (obs::Enabled()) {
      obs::EventLog::Global().Append(
          obs::EventKind::kArrival, now, /*decision_id=*/0,
          {{"request_index", obs::JsonValue(static_cast<unsigned long long>(oi))},
           {"game_id", obs::JsonValue(request.session.game_id)},
           {"pixels", obs::JsonValue(request.session.resolution.NumPixels())},
           {"duration_min", obs::JsonValue(request.duration_min)}});
    }

    int choice;
    PendingDecisionDetail().Clear();
    {
      obs::ScopedTimer decision_timer(SchedMetrics::Get().decision_us);
      choice = policy(open_view, request.session);
    }
    if (obs::Enabled()) {
      SchedMetrics& metrics = SchedMetrics::Get();
      metrics.placements.Add(1);
      // Open servers the policy was offered but did not pick.
      metrics.candidates_rejected.Add(open_view.size() -
                                      (choice >= 0 ? 1 : 0));
    }
    std::size_t target;
    if (choice < 0) {
      // Reuse a powered-off slot if one exists, else grow the fleet.
      auto idle = std::find_if(servers.begin(), servers.end(),
                               [](const LiveServer& s) {
                                 return s.sessions.empty();
                               });
      if (idle == servers.end()) {
        servers.emplace_back();
        target = servers.size() - 1;
      } else {
        target = static_cast<std::size_t>(idle - servers.begin());
      }
    } else {
      GAUGUR_CHECK_MSG(static_cast<std::size_t>(choice) < open_view.size(),
                       "policy returned an invalid server index");
      target = open_index[static_cast<std::size_t>(choice)];
    }
    LiveServer& server = servers[target];
    GAUGUR_CHECK(server.sessions.size() < options.max_sessions_per_server);
    if (obs::Enabled()) {
      // One decision event per arrival, carrying the policy's judgement of
      // every open candidate (when the policy published one) so a later
      // violation can be traced back to "what did the predictor believe".
      const std::uint64_t decision_id =
          obs::EventLog::Global().NextDecisionId();
      server.last_decision_id = decision_id;
      obs::JsonObject fields;
      fields["request_index"] =
          obs::JsonValue(static_cast<unsigned long long>(oi));
      fields["game_id"] = obs::JsonValue(request.session.game_id);
      fields["num_candidates"] =
          obs::JsonValue(static_cast<unsigned long long>(open_view.size()));
      fields["choice"] = obs::JsonValue(choice);
      fields["target_server"] =
          obs::JsonValue(static_cast<unsigned long long>(target));
      const DecisionDetail& detail = PendingDecisionDetail();
      if (detail.has_detail) {
        obs::JsonArray candidates;
        candidates.reserve(detail.candidates.size());
        unsigned long long queries_total = 0, cache_hits_total = 0;
        for (const CandidateJudgement& judgement : detail.candidates) {
          obs::JsonObject entry;
          entry["feasible"] = obs::JsonValue(judgement.feasible);
          entry["memory_ok"] = obs::JsonValue(judgement.memory_ok);
          entry["queries"] = obs::JsonValue(
              static_cast<unsigned long long>(judgement.queries));
          entry["cache_hits"] = obs::JsonValue(
              static_cast<unsigned long long>(judgement.cache_hits));
          entry["min_margin"] = obs::JsonValue(judgement.min_margin);
          candidates.push_back(obs::JsonValue(std::move(entry)));
          queries_total += judgement.queries;
          cache_hits_total += judgement.cache_hits;
        }
        fields["candidates"] = obs::JsonValue(std::move(candidates));
        fields["queries_total"] = obs::JsonValue(queries_total);
        fields["cache_hits_total"] = obs::JsonValue(cache_hits_total);
      }
      obs::EventLog::Global().Append(obs::EventKind::kDecision, now,
                                     decision_id, std::move(fields));
    }
    const bool was_empty = server.sessions.empty();
    server.sessions.push_back(
        {request.session, oi, now + request.duration_min});
    if (was_empty) bill_and_update(target, now, /*now_empty=*/false);
    mark_violations(target, now);
    departures.emplace(now + request.duration_min, std::make_pair(target, oi));
  }

  // Drain remaining departures.
  while (!departures.empty()) {
    const auto [server_idx, request_idx] = departures.begin()->second;
    const double when = departures.begin()->first;
    departures.erase(departures.begin());
    LiveServer& server = servers[server_idx];
    auto it = std::find_if(server.sessions.begin(), server.sessions.end(),
                           [&](const LiveSession& s) {
                             return s.request_index == request_idx;
                           });
    GAUGUR_CHECK(it != server.sessions.end());
    server.sessions.erase(it);
    if (obs::Enabled()) {
      obs::EventLog::Global().Append(
          obs::EventKind::kDeparture, when, /*decision_id=*/0,
          {{"server",
            obs::JsonValue(static_cast<unsigned long long>(server_idx))},
           {"request_index",
            obs::JsonValue(static_cast<unsigned long long>(request_idx))}});
    }
    mark_violations(server_idx, when);
    bill_and_update(server_idx, when, server.sessions.empty());
    if (obs::Enabled()) obs::HealthEngine::Global().Evaluate(when);
  }

  for (char v : violated) result.violated_sessions += v != 0 ? 1 : 0;
  return result;
}

std::vector<DynamicRequest> GenerateDynamicTrace(
    std::span<const int> game_ids, double horizon_min,
    double arrivals_per_min, double mean_duration_min, std::uint64_t seed,
    resources::Resolution resolution) {
  GAUGUR_CHECK(!game_ids.empty());
  GAUGUR_CHECK(arrivals_per_min > 0.0 && mean_duration_min > 0.0);
  common::Rng rng(seed);
  std::vector<DynamicRequest> trace;
  double now = 0.0;
  for (;;) {
    // Exponential inter-arrival gap.
    now += -std::log(1.0 - rng.Uniform()) / arrivals_per_min;
    if (now >= horizon_min) break;
    DynamicRequest request;
    request.arrival_min = now;
    // Log-normal-ish duration: median ~ mean/1.3, heavy right tail.
    request.duration_min = std::max(
        2.0, mean_duration_min * std::exp(rng.Gaussian(-0.25, 0.7)));
    request.session = {game_ids[rng.UniformInt(game_ids.size())],
                       resolution};
    trace.push_back(request);
  }
  return trace;
}

PlacementPolicy MakeFirstFeasiblePolicy(
    std::function<bool(const core::Colocation&)> feasible) {
  return [feasible = std::move(feasible)](
             std::span<const Colocation> open_servers,
             const SessionRequest& arrival) -> int {
    for (std::size_t s = 0; s < open_servers.size(); ++s) {
      Colocation extended = open_servers[s];
      extended.push_back(arrival);
      if (feasible(extended)) return static_cast<int>(s);
    }
    return -1;
  };
}

PlacementPolicy MakeBatchFeasiblePolicy(BatchFeasibility feasible) {
  return [feasible = std::move(feasible)](
             std::span<const Colocation> open_servers,
             const SessionRequest& arrival) -> int {
    if (open_servers.empty()) return -1;
    std::vector<Colocation> candidates;
    candidates.reserve(open_servers.size());
    for (const Colocation& content : open_servers) {
      Colocation extended = content;
      extended.push_back(arrival);
      candidates.push_back(std::move(extended));
    }
    const std::vector<char> verdict = feasible(candidates);
    for (std::size_t s = 0; s < verdict.size(); ++s) {
      if (verdict[s] != 0) return static_cast<int>(s);
    }
    return -1;
  };
}

PlacementPolicy MakeDedicatedPolicy() {
  return [](std::span<const Colocation>, const SessionRequest&) -> int {
    return -1;
  };
}

DecisionDetail& PendingDecisionDetail() {
  thread_local DecisionDetail detail;
  return detail;
}

PlacementPolicy MakeProvenancePolicy(const core::GAugurPredictor& predictor,
                                     double qos_fps) {
  return [&predictor, qos_fps](std::span<const Colocation> open_servers,
                               const SessionRequest& arrival) -> int {
    if (open_servers.empty()) {
      // Still one arrival for the prediction cache's reuse window.
      predictor.AdvanceArrivalEpoch();
      return -1;
    }
    std::vector<Colocation> candidates;
    candidates.reserve(open_servers.size());
    for (const Colocation& content : open_servers) {
      Colocation extended = content;
      extended.push_back(arrival);
      candidates.push_back(std::move(extended));
    }
    const std::vector<core::CandidateScore> scores =
        predictor.ScoreCandidatesDetailed(qos_fps, candidates);
    DecisionDetail& detail = PendingDecisionDetail();
    detail.Clear();
    if (obs::Enabled()) {
      detail.has_detail = true;
      detail.candidates.reserve(scores.size());
      for (const core::CandidateScore& score : scores) {
        detail.candidates.push_back({score.feasible, score.memory_ok,
                                     score.queries, score.cache_hits,
                                     score.min_margin});
      }
    }
    for (std::size_t s = 0; s < scores.size(); ++s) {
      if (scores[s].feasible) return static_cast<int>(s);
    }
    return -1;
  };
}

}  // namespace gaugur::sched
