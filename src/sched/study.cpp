#include "sched/study.h"

#include "common/check.h"
#include "common/rng.h"

namespace gaugur::sched {

StudySetup SelectStudyGames(const core::ColocationLab& lab,
                            std::size_t count, double qos_fps,
                            std::uint64_t seed,
                            resources::Resolution resolution) {
  // Games must be individually playable at the QoS floor (the paper's
  // random selections are). No extra margin: borderline games are what
  // makes large colocations scarce and the packing problem interesting.
  const double floor = qos_fps;
  // Memory must never be the binding constraint (the paper's testbed
  // colocates up to four games without hitting RAM/VRAM limits), so any
  // four pool games have to fit the server's memory together.
  constexpr double kMaxMemoryShare = 0.24;
  std::vector<int> eligible;
  for (std::size_t id = 0; id < lab.catalog().size(); ++id) {
    core::SessionRequest session{static_cast<int>(id), resolution};
    const auto& game = lab.catalog()[id];
    if (lab.TrueSoloFps(session) >= floor &&
        game.cpu_memory <= kMaxMemoryShare &&
        game.gpu_memory <= kMaxMemoryShare) {
      eligible.push_back(static_cast<int>(id));
    }
  }
  GAUGUR_CHECK_MSG(eligible.size() >= count,
                   "only " << eligible.size() << " games clear "
                           << floor << " FPS solo");
  common::Rng rng(seed);
  rng.Shuffle(eligible);
  eligible.resize(count);

  StudySetup setup;
  setup.game_ids = eligible;
  setup.pool.reserve(count);
  for (int id : eligible) {
    setup.pool.push_back(core::SessionRequest{id, resolution});
  }
  return setup;
}

std::vector<int> GenerateRequestCounts(std::size_t num_games_total,
                                       std::span<const int> game_ids,
                                       int total, std::uint64_t seed) {
  GAUGUR_CHECK(!game_ids.empty());
  std::vector<int> counts(num_games_total, 0);
  common::Rng rng(seed);
  for (int i = 0; i < total; ++i) {
    const int id = game_ids[rng.UniformInt(game_ids.size())];
    ++counts[static_cast<std::size_t>(id)];
  }
  return counts;
}

std::vector<core::SessionRequest> RequestStream(
    std::span<const int> counts, std::uint64_t seed,
    resources::Resolution resolution) {
  std::vector<core::SessionRequest> requests;
  for (std::size_t id = 0; id < counts.size(); ++id) {
    for (int i = 0; i < counts[id]; ++i) {
      requests.push_back(
          core::SessionRequest{static_cast<int>(id), resolution});
    }
  }
  common::Rng rng(seed);
  rng.Shuffle(requests);
  return requests;
}

}  // namespace gaugur::sched
