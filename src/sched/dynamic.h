// Dynamic session scheduling: the online reality behind the paper's
// static packing study. Players arrive over the day, play for a while,
// and leave; each arrival must be admitted onto a server immediately, and
// migrating a running game later is off the table (the paper's first
// challenge — "it is hard to readjust by migrating games among servers").
//
// This module provides an event-driven fleet simulation plus pluggable
// placement policies, and scores each policy by:
//   * server-minutes (the cost integral: how many machines were powered,
//     for how long),
//   * peak concurrent servers (the provisioning requirement), and
//   * QoS violations (sessions whose frame rate dipped below the floor at
//     any point in their lifetime, measured on the ground-truth
//     simulator).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "gaugur/lab.h"

namespace gaugur::core {
class GAugurPredictor;
}  // namespace gaugur::core

namespace gaugur::sched {

/// One session arrival in the workload trace.
struct DynamicRequest {
  double arrival_min = 0.0;
  double duration_min = 30.0;
  core::SessionRequest session;
};

/// Chooses a server for an arrival: an index into `open_servers` (each
/// entry is the colocation currently running there), or -1 to power a
/// fresh server. Returning an index of a full server is a contract
/// violation (CHECK).
using PlacementPolicy = std::function<int(
    std::span<const core::Colocation> open_servers,
    const core::SessionRequest& arrival)>;

struct DynamicOptions {
  std::size_t max_sessions_per_server = 4;
  double qos_fps = 60.0;
  /// Upper bound on the open servers offered to the policy per arrival;
  /// 0 = offer all (the bit-identical legacy contract). With a positive
  /// cap and more open servers than the cap, the policy sees the
  /// lowest-indexed half of the cap (preserving first-feasible packing
  /// pressure) plus a seeded random sample of the rest (spreading
  /// exploration) — bounding per-decision cost at fleet scale.
  std::size_t max_policy_candidates = 0;
};

struct DynamicResult {
  double server_minutes = 0.0;
  std::size_t peak_servers = 0;
  std::size_t sessions = 0;
  /// Sessions whose ground-truth FPS fell below qos_fps during any
  /// interval of their lifetime.
  std::size_t violated_sessions = 0;
  /// Power-on transitions (each starts one billed server trajectory).
  /// Always >= peak_servers; mirrored as the "sched.powerons" counter.
  std::size_t powerons = 0;
  /// Server chosen for each request index (fleet-global server id; see
  /// ShardOfServer for the sharded id scheme). -1 = request not placed
  /// (never happens for completed runs). Placement equivalence tests
  /// compare these vectors directly.
  std::vector<long long> placements;

  double MeanServersInUse(double horizon_min) const {
    return horizon_min > 0.0 ? server_minutes / horizon_min : 0.0;
  }
};

/// Runs the fleet simulation. `requests` need not be sorted. The policy
/// only sees servers with a free slot.
///
/// With observability enabled, every arrival (and the final departure
/// drain) also runs one obs::HealthEngine::Global().Evaluate(now) pass —
/// arm it with rules (e.g. InstallDefaultRules) before the run to get
/// live SLO burn-rate / deficit / drift alerts in the event stream. A
/// demo subscriber acknowledges PSI-drift firings into the provenance
/// log for the run's duration.
DynamicResult SimulateDynamicFleet(const core::ColocationLab& lab,
                                   std::span<const DynamicRequest> requests,
                                   const PlacementPolicy& policy,
                                   const DynamicOptions& options = {});

/// Poisson arrivals with log-normal-ish play durations, uniform over the
/// study games. Deterministic in `seed`.
std::vector<DynamicRequest> GenerateDynamicTrace(
    std::span<const int> game_ids, double horizon_min,
    double arrivals_per_min, double mean_duration_min, std::uint64_t seed,
    resources::Resolution resolution = resources::kReferenceResolution);

/// First-feasible admission guided by a QoS oracle: place on the first
/// open server where `feasible(colocation + arrival)` holds, else a new
/// server. Wrap a GAugurPredictor, a baseline, or the ground truth.
PlacementPolicy MakeFirstFeasiblePolicy(
    std::function<bool(const core::Colocation&)> feasible);

/// Judges a span of candidate colocations at once (one element per open
/// server, each already extended with the arrival). Wire to
/// Methodology::FeasibleBatch or GAugurPredictor::ScoreCandidates.
using BatchFeasibility = std::function<std::vector<char>(
    std::span<const core::Colocation> candidates)>;

/// First-feasible admission with one batched feasibility call per
/// arrival: all extended candidates are scored together, and the first
/// feasible index wins. Placement decisions are identical to
/// MakeFirstFeasiblePolicy over the same judgement.
PlacementPolicy MakeBatchFeasiblePolicy(BatchFeasibility feasible);

/// The no-colocation policy: every session gets its own server.
PlacementPolicy MakeDedicatedPolicy();

/// How one candidate server fared in a provenance-aware policy's scoring
/// pass (mirrors core::CandidateScore; kept separate so the event-log
/// schema does not leak predictor internals).
struct CandidateJudgement {
  bool feasible = false;
  bool memory_ok = false;
  std::uint32_t queries = 0;
  std::uint32_t cache_hits = 0;
  double min_margin = 0.0;
};

/// Side channel between a provenance-aware policy and the fleet
/// simulator: the policy fills this during its call, and
/// SimulateDynamicFleet folds it into the decision event it appends to
/// obs::EventLog right after. Thread-local, cleared before every policy
/// invocation; plain policies simply leave it empty.
struct DecisionDetail {
  bool has_detail = false;
  std::vector<CandidateJudgement> candidates;
  void Clear() {
    has_detail = false;
    candidates.clear();
  }
};
DecisionDetail& PendingDecisionDetail();

/// First-feasible admission over GAugurPredictor::ScoreCandidatesDetailed:
/// placements are identical to MakeBatchFeasiblePolicy wired to
/// ScoreCandidates, but every decision also publishes per-candidate
/// provenance (memory screen, query/cache-hit counts, worst margin)
/// through PendingDecisionDetail for the event log. `predictor` must
/// outlive the policy.
PlacementPolicy MakeProvenancePolicy(const core::GAugurPredictor& predictor,
                                     double qos_fps);

// ---------------------------------------------------------------------------
// Sharded fleet service: the fleet partitioned into N shards, each driven
// by a common::ThreadPool worker that owns its shard's server state, RNG
// stream, and (for predictor-backed policies) a read-only GAugurPredictor
// replica sharing one striped PredictionCache. See DESIGN.md "Sharded
// fleet service".

/// Reverse of the sharded server-id scheme: shard s's k-th local server
/// has fleet-global id `k * num_shards + s`, so ownership is recoverable
/// from the id alone (arrival routing, event forensics).
inline std::size_t ShardOfServer(std::uint64_t server_id,
                                 std::size_t num_shards) {
  return static_cast<std::size_t>(server_id % num_shards);
}

/// Shard count from GAUGUR_FLEET_SHARDS (>=1), defaulting to
/// hardware_concurrency when unset/invalid.
std::size_t FleetShardsFromEnv();

struct ShardedFleetOptions {
  /// Per-shard simulation contract (QoS floor, server capacity,
  /// candidate cap).
  DynamicOptions dynamic;
  /// Shards == dedicated workers. 1 reproduces SimulateDynamicFleet's
  /// placements bit-identically (pinned by a pipeline test).
  std::size_t num_shards = 1;
  /// Tick-barrier cadence in sim minutes: all shards synchronize at every
  /// window boundary, where exactly one thread runs the fleet-wide health
  /// evaluation and telemetry-sink tick while every shard is quiescent.
  double tick_window_min = 5.0;
  /// Seeds the per-shard RNG streams (candidate subsampling).
  std::uint64_t seed = 0;
  /// Record every decision latency (per shard, merged into the result's
  /// p50/p99). Costs one double per arrival.
  bool collect_decision_latencies = true;
};

struct ShardedFleetResult {
  /// Cross-shard aggregate. `placements` covers every request (each shard
  /// writes its own disjoint request indices); `peak_servers` is the sum
  /// of per-shard peaks — an upper bound on the instantaneous fleet peak,
  /// exact for num_shards == 1.
  DynamicResult total;
  std::vector<DynamicResult> per_shard;
  std::size_t num_shards = 1;
  /// Fleet-wide concurrent sessions, sampled at every tick barrier while
  /// all shards are quiescent (exact at barrier instants).
  std::size_t peak_concurrent_sessions = 0;
  /// Merged decision-latency quantiles (0 when collection is off).
  double decision_latency_p50_us = 0.0;
  double decision_latency_p99_us = 0.0;
  /// Tick barriers crossed.
  std::size_t ticks = 0;
};

/// Builds one placement policy per shard. Policies run concurrently (one
/// shard each), so stateful policies must not share mutable state unless
/// it is thread-safe (predictor replicas sharing the striped cache are).
using ShardPolicyFactory = std::function<PlacementPolicy(std::size_t shard)>;

/// Runs the sharded fleet simulation: arrivals are routed round-robin
/// over the time-sorted order (arrival i -> shard i % num_shards), each
/// shard simulates its sub-fleet on a dedicated pool worker (pinned via
/// ThreadPool::SubmitNamed), and shards synchronize at tick-window
/// barriers. Event-log decision counts, monitor totals, and `sched.*`
/// metrics aggregate exactly across shards; sharded-run events carry a
/// "shard" field.
ShardedFleetResult SimulateShardedFleet(
    const core::ColocationLab& lab, std::span<const DynamicRequest> requests,
    const ShardPolicyFactory& policy_factory,
    const ShardedFleetOptions& options = {});

/// Side channel from the simulator to hash-aware policies: before each
/// policy call the simulator fills this with the additive colocation hash
/// (core::IncrementalColocationHash) of every open server it is offering,
/// parallel to `open_servers`. MakeProvenancePolicy derives each
/// candidate's prediction-cache key from these in O(1) instead of
/// rehashing the extended set. Thread-local, like PendingDecisionDetail.
std::vector<std::uint64_t>& PendingOpenServerHashes();

/// ShardPolicyFactory for the sharded service: each shard receives its
/// own read-only replica of `predictor` (shared models, shared striped
/// prediction cache — one shard's miss warms every shard) wrapped in a
/// provenance-publishing first-feasible policy identical in behavior to
/// MakeProvenancePolicy. `predictor` must be trained before the call and
/// outlive the returned factory's policies.
ShardPolicyFactory MakeReplicatedProvenanceFactory(
    const core::GAugurPredictor& predictor, double qos_fps);

}  // namespace gaugur::sched
