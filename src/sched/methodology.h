// A uniform facade over every prediction methodology the paper compares
// (GAugur CM, GAugur RM, Sigmoid, SMiTe, VBP), so the §5 experiments can
// sweep them: feasibility judgement for the packing study (Fig. 9) and
// per-session FPS prediction for the assignment study (Fig. 10).
//
// All methodologies apply the same profiled-memory capacity check —
// memory is a hard constraint independent of interference prediction.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/sigmoid_model.h"
#include "baselines/smite_model.h"
#include "baselines/vbp_model.h"
#include "gaugur/predictor.h"

namespace gaugur::sched {

class Methodology {
 public:
  virtual ~Methodology() = default;

  virtual std::string Name() const = 0;

  /// Does this methodology judge the colocation QoS-feasible?
  virtual bool Feasible(double qos_fps,
                        const core::Colocation& colocation) const = 0;

  /// Feasible() over a span of candidate colocations. The GAugur
  /// methodologies override this with one batched predictor evaluation
  /// per call; the default loops the scalar judgement. Verdicts are
  /// identical to calling Feasible() per candidate.
  virtual std::vector<char> FeasibleBatch(
      double qos_fps, std::span<const core::Colocation> candidates) const;

  /// Whether PredictFps is meaningful (VBP has no performance model).
  virtual bool CanPredictFps() const { return true; }

  virtual double PredictFps(
      const core::SessionRequest& victim,
      std::span<const core::SessionRequest> corunners) const = 0;

  /// Per-candidate sum of PredictFps over every session (victims in
  /// colocation order — same accumulation order as the scalar loop, so
  /// sums are bit-identical). Requires CanPredictFps(). The GAugur
  /// methodologies override this with one batched RM evaluation.
  virtual std::vector<double> PredictFpsSums(
      std::span<const core::Colocation> candidates) const;
};

/// Profiled memory fit shared by all predictive methodologies.
bool ProfiledMemoryFits(const core::FeatureBuilder& features,
                        const core::Colocation& colocation);

/// GAugur with the classification model (and RM for FPS if trained).
std::unique_ptr<Methodology> MakeGAugurCmMethod(
    const core::GAugurPredictor& predictor);

/// GAugur using the regression model thresholded for feasibility.
std::unique_ptr<Methodology> MakeGAugurRmMethod(
    const core::GAugurPredictor& predictor);

std::unique_ptr<Methodology> MakeSigmoidMethod(
    const core::FeatureBuilder& features,
    const baselines::SigmoidModel& model);

std::unique_ptr<Methodology> MakeSmiteMethod(
    const core::FeatureBuilder& features, const baselines::SmiteModel& model);

std::unique_ptr<Methodology> MakeVbpMethod(
    const core::FeatureBuilder& features, const baselines::VbpModel& model);

}  // namespace gaugur::sched
