#include "common/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace gaugur::common {

Table::Table(std::vector<std::string> headers, int double_precision)
    : headers_(std::move(headers)), double_precision_(double_precision) {
  GAUGUR_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<Cell> cells) {
  GAUGUR_CHECK_MSG(cells.size() == headers_.size(),
                   "row has " << cells.size() << " cells, expected "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Format(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) {
    return std::to_string(*i);
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(double_precision_)
     << std::get<double>(cell);
  return os.str();
}

std::string Table::ToText() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(Format(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : formatted) emit_row(row);
  return os.str();
}

std::string Table::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << quote(Format(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

void Table::Print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) {
    os << "\n== " << title << " ==\n";
  }
  os << ToText();
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToCsv();
  return static_cast<bool>(file);
}

}  // namespace gaugur::common
