// Report tables for the bench harness. Each paper figure is regenerated as
// a text table (aligned columns, printed to stdout) and optionally a CSV
// file, so results can be eyeballed in the terminal or re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace gaugur::common {

/// A cell is a string, an integer, or a double (printed with fixed
/// precision chosen per table).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int double_precision = 3);

  /// Appends a row; must have exactly as many cells as headers.
  void AddRow(std::vector<Cell> cells);

  std::size_t NumRows() const { return rows_.size(); }

  /// Renders with aligned columns and a header separator.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string ToCsv() const;

  /// Print ToText() to the stream with an optional title banner.
  void Print(std::ostream& os, const std::string& title = "") const;

  /// Write ToCsv() to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::string Format(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int double_precision_;
};

}  // namespace gaugur::common
