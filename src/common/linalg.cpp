#include "common/linalg.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gaugur::common {

bool SolveLinearSystem(std::vector<double> a, std::vector<double> b,
                       std::size_t n, std::vector<double>& x) {
  GAUGUR_CHECK(a.size() == n * n);
  GAUGUR_CHECK(b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot * n + col]) < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= a[i * n + k] * x[k];
    }
    x[i] = sum / a[i * n + i];
  }
  return true;
}

std::vector<double> LeastSquares(std::span<const double> x_rowmajor,
                                 std::size_t rows, std::size_t cols,
                                 std::span<const double> y, double ridge) {
  GAUGUR_CHECK(x_rowmajor.size() == rows * cols);
  GAUGUR_CHECK(y.size() == rows);
  GAUGUR_CHECK(rows >= 1 && cols >= 1);

  // Normal equations: (X'X + ridge I) w = X'y.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = x_rowmajor.data() + r * cols;
    for (std::size_t i = 0; i < cols; ++i) {
      xty[i] += row[i] * y[r];
      for (std::size_t j = i; j < cols; ++j) {
        xtx[i * cols + j] += row[i] * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < cols; ++i) {
    xtx[i * cols + i] += ridge;
    for (std::size_t j = 0; j < i; ++j) {
      xtx[i * cols + j] = xtx[j * cols + i];
    }
  }
  std::vector<double> w;
  double boost = ridge;
  // Escalate regularization until solvable; degenerate designs happen
  // when a baseline is fit on too few samples.
  while (!SolveLinearSystem(xtx, xty, cols, w)) {
    boost = std::max(boost * 100.0, 1e-6);
    for (std::size_t i = 0; i < cols; ++i) {
      xtx[i * cols + i] += boost;
    }
  }
  return w;
}

}  // namespace gaugur::common
