#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gaugur::common {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  GAUGUR_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  GAUGUR_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double Percentile(std::span<const double> xs, double q) {
  GAUGUR_CHECK(!xs.empty());
  GAUGUR_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  GAUGUR_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LineFit FitLine(std::span<const double> xs, std::span<const double> ys) {
  GAUGUR_CHECK(xs.size() == ys.size());
  GAUGUR_CHECK(xs.size() >= 2);
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  GAUGUR_CHECK_MSG(sxx > 0.0, "FitLine requires non-constant x values");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - fit.Eval(xs[i]);
    ss_res += r * r;
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::vector<CdfPoint> EmpiricalCdf(std::span<const double> xs,
                                   std::size_t num_points) {
  GAUGUR_CHECK(!xs.empty());
  GAUGUR_CHECK(num_points >= 2);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(num_points);
  for (std::size_t i = 0; i < num_points; ++i) {
    const double frac =
        static_cast<double>(i + 1) / static_cast<double>(num_points);
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(sorted.size() - 1) + 0.5);
    cdf.push_back({sorted[idx], frac});
  }
  return cdf;
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace gaugur::common
