// Fixed-size worker pool with a blocking task queue plus a ParallelFor
// convenience for the embarrassingly parallel loops in this repository:
// fitting the trees of a random forest, sweeping profiling pressures, and
// evaluating scheduler candidates.
//
// Design notes (why not std::async / OpenMP):
//  * std::async gives no control over thread count and may serialize;
//  * the repo must build with no dependencies beyond the standard library;
//  * a single shared pool avoids oversubscription when nested code paths
//    (e.g. forest-fit inside a bench sweep) both want parallelism — inner
//    calls fall back to inline execution when invoked from a worker thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <string_view>
#include <thread>
#include <vector>

namespace gaugur::common {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t NumThreads() const { return workers_.size(); }

  /// Shared-queue tasks currently enqueued but not yet picked up by a
  /// worker. The destructor drains the queue before joining and asserts
  /// this is zero. Mirrored into the obs registry as the
  /// "pool.queue_depth" gauge.
  std::size_t QueueDepth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Pinned-queue counterpart of QueueDepth(): tasks submitted via
  /// SubmitPinned / SubmitNamed that no worker has dequeued yet, summed
  /// over all per-worker queues. Tracked separately from the shared
  /// queue (gauge "pool.pinned_queue_depth") because a backlog here
  /// means one specific worker is behind — affinity work cannot be
  /// stolen, so the shared-depth gauge alone would hide a stuck shard.
  /// Drains to zero by the time the destructor's joins return (asserted
  /// there).
  std::size_t PinnedQueueDepth() const {
    return pinned_depth_.load(std::memory_order_relaxed);
  }

  /// Total tasks this pool has finished executing ("pool.tasks_executed"
  /// counter in the obs registry).
  std::uint64_t TasksExecuted() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Enqueue a task that only worker `worker` (< NumThreads()) may run.
  /// Pinned tasks for one worker execute in submission order and take
  /// priority over the shared queue — the affinity primitive behind the
  /// sharded fleet service, where each shard's tasks must always land on
  /// the worker owning that shard's state (no synchronization needed on
  /// the state itself).
  std::future<void> SubmitPinned(std::size_t worker,
                                 std::function<void()> task);

  /// SubmitPinned to the worker a stable name maps to:
  /// WorkerIndexForName gives names with a trailing integer (e.g.
  /// "shard-7") that integer modulo NumThreads(), so shard names
  /// partition round-robin; other names hash (FNV-1a) modulo
  /// NumThreads(). Tasks sharing a name always share a worker.
  std::future<void> SubmitNamed(std::string_view name,
                                std::function<void()> task);
  std::size_t WorkerIndexForName(std::string_view name) const;

  /// Runs body(i) for i in [begin, end), distributing contiguous chunks
  /// over the pool and blocking until all complete. Exceptions thrown by
  /// `body` are rethrown (first one wins). Safe to call from a worker
  /// thread: it then runs inline to avoid deadlock.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers. Code
  /// that fans work out over the pool and blocks on completion (e.g.
  /// the multi-core tree kernel) must run inline instead when already
  /// on a worker: a worker waiting on futures served by its own queue
  /// can deadlock, and the sharded fleet service pins each shard to one
  /// worker precisely so its decisions never migrate.
  bool CurrentThreadInPool() const { return OnWorkerThread(); }

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& Global();

 private:
  bool OnWorkerThread() const;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  /// Per-worker pinned queues (guarded by mutex_); checked before the
  /// shared queue so affinity work is never stolen.
  std::vector<std::deque<std::function<void()>>> pinned_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> pinned_depth_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
};

}  // namespace gaugur::common
