#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"
#include "obs/metrics.h"

namespace gaugur::common {

namespace {

/// Process-wide pool telemetry (summed across every ThreadPool instance).
struct PoolMetrics {
  obs::Gauge& queue_depth =
      obs::Registry::Global().GetGauge("pool.queue_depth");
  obs::Gauge& pinned_queue_depth =
      obs::Registry::Global().GetGauge("pool.pinned_queue_depth");
  obs::Counter& tasks_executed =
      obs::Registry::Global().GetCounter("pool.tasks_executed");

  static PoolMetrics& Get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pinned_.resize(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      for (;;) {
        std::function<void()> task;
        {
          std::unique_lock lock(mutex_);
          cv_.wait(lock, [this, i] {
            return stop_ || !tasks_.empty() || !pinned_[i].empty();
          });
          if (stop_ && tasks_.empty() && pinned_[i].empty()) return;
          // Pinned work first: affinity tasks must run on this worker
          // and in submission order, so they are never left behind a
          // long shared-queue backlog.
          if (!pinned_[i].empty()) {
            task = std::move(pinned_[i].front());
            pinned_[i].pop_front();
            pinned_depth_.fetch_sub(1, std::memory_order_relaxed);
            PoolMetrics::Get().pinned_queue_depth.Sub(1);
          } else {
            task = std::move(tasks_.front());
            tasks_.pop();
            queue_depth_.fetch_sub(1, std::memory_order_relaxed);
            PoolMetrics::Get().queue_depth.Sub(1);
          }
        }
        // Counted at dequeue so the tally is exact the moment every
        // submitted future has resolved (the increment happens-before the
        // task body, which happens-before the future becoming ready).
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        PoolMetrics::Get().tasks_executed.Add(1);
        task();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers only exit once the queue is empty (see the wait predicate), so
  // joining them is a deterministic drain: every task submitted before
  // stop was set has run by the time the joins return.
  for (auto& w : workers_) w.join();
  GAUGUR_CHECK_MSG(tasks_.empty(), "ThreadPool destroyed with queued tasks");
  for (const auto& q : pinned_) {
    GAUGUR_CHECK_MSG(q.empty(), "ThreadPool destroyed with pinned tasks");
  }
  GAUGUR_CHECK_MSG(QueueDepth() == 0,
                   "queue-depth gauge nonzero after drain");
  GAUGUR_CHECK_MSG(PinnedQueueDepth() == 0,
                   "pinned-queue-depth gauge nonzero after drain");
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard lock(mutex_);
    GAUGUR_CHECK_MSG(!stop_, "Submit on stopped ThreadPool");
    tasks_.emplace([packaged] { (*packaged)(); });
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
    PoolMetrics::Get().queue_depth.Add(1);
  }
  cv_.notify_one();
  return future;
}

std::future<void> ThreadPool::SubmitPinned(std::size_t worker,
                                           std::function<void()> task) {
  GAUGUR_CHECK_MSG(worker < workers_.size(), "pinned worker out of range");
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    std::lock_guard lock(mutex_);
    GAUGUR_CHECK_MSG(!stop_, "SubmitPinned on stopped ThreadPool");
    pinned_[worker].emplace_back([packaged] { (*packaged)(); });
    pinned_depth_.fetch_add(1, std::memory_order_relaxed);
    PoolMetrics::Get().pinned_queue_depth.Add(1);
  }
  // notify_all: with one condition variable, notify_one could wake a
  // worker whose pinned queue is empty while the target keeps sleeping.
  cv_.notify_all();
  return future;
}

std::size_t ThreadPool::WorkerIndexForName(std::string_view name) const {
  const std::size_t n = workers_.size();
  // Names ending in an integer ("shard-7", "worker12") map by that
  // integer modulo N, so numbered shards partition round-robin with no
  // hash collisions among the first N shards.
  std::size_t digits = 0;
  while (digits < name.size() &&
         name[name.size() - 1 - digits] >= '0' &&
         name[name.size() - 1 - digits] <= '9') {
    ++digits;
  }
  if (digits > 0) {
    std::uint64_t value = 0;
    for (std::size_t i = name.size() - digits; i < name.size(); ++i) {
      value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
      if (value > (std::uint64_t{1} << 52)) value %= n;  // avoid overflow
    }
    return static_cast<std::size_t>(value % n);
  }
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(hash % n);
}

std::future<void> ThreadPool::SubmitNamed(std::string_view name,
                                          std::function<void()> task) {
  return SubmitPinned(WorkerIndexForName(name), std::move(task));
}

bool ThreadPool::OnWorkerThread() const {
  const auto self = std::this_thread::get_id();
  return std::any_of(workers_.begin(), workers_.end(),
                     [self](const std::thread& w) { return w.get_id() == self; });
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Inline when trivial or when called from a worker (nested parallelism):
  // a worker blocking on futures served by the same pool would deadlock.
  if (n == 1 || workers_.size() == 1 || OnWorkerThread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t num_chunks = std::min(n, workers_.size() * 4);
  std::atomic<std::size_t> next_chunk{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto run_chunks = [&] {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1);
      if (c >= num_chunks) return;
      const std::size_t chunk_begin = begin + c * n / num_chunks;
      const std::size_t chunk_end = begin + (c + 1) * n / num_chunks;
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::future<void>> futures;
  const std::size_t helpers = std::min(workers_.size(), num_chunks) - 1;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    futures.push_back(Submit(run_chunks));
  }
  run_chunks();  // The calling thread participates too.
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gaugur::common
