// Lightweight precondition / invariant checking.
//
// GAUGUR_CHECK is active in all build types: simulation and model-training
// code paths are cheap relative to the cost of silently corrupt state, and
// the benches depend on deterministic, validated inputs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gaugur::common {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "GAUGUR_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace gaugur::common

#define GAUGUR_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::gaugur::common::CheckFailed(#cond, __FILE__, __LINE__, "");     \
    }                                                                   \
  } while (0)

#define GAUGUR_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream gaugur_check_os_;                              \
      gaugur_check_os_ << msg;                                          \
      ::gaugur::common::CheckFailed(#cond, __FILE__, __LINE__,          \
                                    gaugur_check_os_.str());            \
    }                                                                   \
  } while (0)
