// Small numeric helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>

namespace gaugur::common {

inline double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

inline double Sigmoid(double x) {
  // Numerically stable in both tails.
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Linear interpolation between a and b at t in [0, 1].
inline double Lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Piecewise-linear interpolation over a uniform grid of `n` samples on
/// [0, 1]. `ys` points at n >= 2 values; x is clamped to [0, 1].
inline double InterpUniformGrid(const double* ys, int n, double x) {
  x = Clamp01(x);
  const double pos = x * static_cast<double>(n - 1);
  const int lo = std::min(static_cast<int>(pos), n - 2);
  const double frac = pos - static_cast<double>(lo);
  return Lerp(ys[lo], ys[lo + 1], frac);
}

/// Relative error |predicted - actual| / |actual| (actual must be nonzero).
inline double RelativeError(double predicted, double actual) {
  return std::abs(predicted - actual) / std::abs(actual);
}

inline bool ApproxEqual(double a, double b, double tol = 1e-9) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace gaugur::common
