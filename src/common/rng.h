// Deterministic, seedable random number generation.
//
// Everything stochastic in this repository (game catalog generation,
// measurement noise, bootstrap sampling, workload draws) flows through Rng so
// that every test and bench is reproducible run-to-run and across machines.
// The generator is xoshiro256++ seeded via splitmix64, which is fast,
// high-quality, and has a trivially portable implementation — we deliberately
// avoid std::mt19937 + std::*_distribution whose outputs differ across
// standard libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "common/check.h"

namespace gaugur::common {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG with convenience draws. Not thread-safe; create one
/// per thread (see Rng::Fork for deriving independent streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9c0ffee123456789ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
    has_cached_gauss_ = false;
  }

  /// Raw 64 random bits.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    GAUGUR_CHECK(lo <= hi);
    return lo + (hi - lo) * Uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t UniformInt(std::uint64_t n) {
    GAUGUR_CHECK(n > 0);
    // Lemire's unbiased bounded generation.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    GAUGUR_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    UniformInt(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached pair).
  double Gaussian() {
    if (has_cached_gauss_) {
      has_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = Uniform();
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Derive an independent stream; deterministic function of current state
  /// and `stream_id`. Used to hand child components their own generator.
  Rng Fork(std::uint64_t stream_id) {
    std::uint64_t mix = Next() ^ (0xa5a5a5a5a5a5a5a5ULL + stream_id);
    return Rng(SplitMix64(mix));
  }

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k) {
    GAUGUR_CHECK(k <= n);
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    // Partial Fisher–Yates: only the first k positions need randomizing.
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

}  // namespace gaugur::common
