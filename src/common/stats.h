// Small statistics toolkit used throughout profiling, model evaluation and
// the bench report generators: moments, percentiles, CDF sampling, simple
// least-squares line fits, and correlation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gaugur::common {

double Mean(std::span<const double> xs);

/// Population variance (divide by n). Returns 0 for n < 2.
double Variance(std::span<const double> xs);

double StdDev(std::span<const double> xs);

double Min(std::span<const double> xs);
double Max(std::span<const double> xs);
double Sum(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 1]. Sorts a copy.
double Percentile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; returns 0 if either side is constant.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/// Result of an ordinary least-squares line fit y = slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination of the fit in [0, 1].
  double r_squared = 0.0;

  double Eval(double x) const { return slope * x + intercept; }
};

/// OLS fit of y on x. Requires at least two points; with exactly two it
/// returns the interpolating line (r_squared = 1).
LineFit FitLine(std::span<const double> xs, std::span<const double> ys);

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// Empirical CDF of `xs` evaluated at `num_points` evenly spaced fractions
/// in (0, 1]. Useful for the CDF figures (7c, 10b).
std::vector<CdfPoint> EmpiricalCdf(std::span<const double> xs,
                                   std::size_t num_points = 20);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  std::size_t Count() const { return n_; }
  double Mean() const { return mean_; }
  /// Population variance.
  double Variance() const;
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gaugur::common
