// Dense linear algebra for the small systems the baselines need: ordinary
// least squares via normal equations with partial-pivot Gaussian
// elimination and Tikhonov ridge fallback for rank-deficient designs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gaugur::common {

/// Solves A x = b for square A (row-major, n x n) with partial pivoting.
/// Returns false if A is numerically singular (x untouched).
bool SolveLinearSystem(std::vector<double> a, std::vector<double> b,
                       std::size_t n, std::vector<double>& x);

/// Least-squares fit of design matrix X (row-major, rows x cols) against
/// y: minimizes |X w - y|^2 + ridge * |w|^2. A small default ridge keeps
/// collinear designs solvable. Returns the weight vector (size cols).
std::vector<double> LeastSquares(std::span<const double> x_rowmajor,
                                 std::size_t rows, std::size_t cols,
                                 std::span<const double> y,
                                 double ridge = 1e-8);

}  // namespace gaugur::common
