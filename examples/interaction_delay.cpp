// Interaction-delay prediction (the paper's §7/§8 extension).
//
// Frame rate alone hides tail behavior: a game averaging 70 FPS can still
// spike past a 30 ms processing-delay budget when scenes get heavy. This
// example trains the DelayPredictor on measured tail frame times and uses
// it to vet a colocation against a latency SLO, then verifies against the
// simulated ground truth.
//
// Run:  ./build/examples/interaction_delay

#include <cstdio>

#include "common/thread_pool.h"
#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/corpus.h"
#include "gaugur/delay.h"
#include "gaugur/lab.h"
#include "profiling/profiler.h"

using namespace gaugur;

int main() {
  constexpr double kDelayBudgetMs = 25.0;

  const auto catalog = gamesim::GameCatalog::MakeDefault(42);
  const gamesim::ServerSim server;
  const core::ColocationLab lab(catalog, server);

  std::printf("Profiling and measuring tail delays (offline)...\n");
  const profiling::Profiler profiler(server);
  core::FeatureBuilder features(
      profiler.ProfileCatalog(catalog, &common::ThreadPool::Global()));
  core::CorpusOptions corpus_options;
  corpus_options.num_pairs = 250;
  corpus_options.num_triples = 60;
  corpus_options.num_quads = 60;
  const auto corpus = core::GenerateCorpus(lab, corpus_options);

  core::DelayPredictor delay(features);
  delay.Train(lab, corpus);

  const core::Colocation colocation = {
      {catalog.ByName("The Witcher 3 - Wild Hunt").id, resources::k1080p},
      {catalog.ByName("StarCraft 2").id, resources::k1080p},
      {catalog.ByName("Stardew Valley").id, resources::k720p}};

  std::printf("\n%-28s %14s %14s %8s\n", "game", "predicted p95",
              "measured p95", "SLO ok");
  const auto actual = lab.MeasureFrameTimes(colocation, 99);
  for (std::size_t v = 0; v < colocation.size(); ++v) {
    std::vector<core::SessionRequest> corunners;
    for (std::size_t j = 0; j < colocation.size(); ++j) {
      if (j != v) corunners.push_back(colocation[j]);
    }
    const double predicted =
        delay.PredictP95DelayMs(colocation[v], corunners);
    const bool ok =
        delay.PredictDelayOk(kDelayBudgetMs, colocation[v], corunners);
    std::printf("%-28s %11.1f ms %11.1f ms %8s\n",
                features.Profile(colocation[v].game_id).name.c_str(),
                predicted, actual[v].p95_ms, ok ? "yes" : "NO");
  }
  std::printf(
      "\nA %g ms processing-delay budget vetoes colocations whose tail "
      "frame times would spike, even when mean FPS looks fine.\n",
      kDelayBudgetMs);
  return 0;
}
