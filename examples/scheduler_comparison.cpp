// Scheduler comparison: live request assignment onto a fixed fleet.
//
// Requests stream in one by one; the scheduler must place each on a
// server immediately (§5.2). This example pits GAugur(RM)-guided
// placement against VBP worst-fit on the same fleet and reports the
// frame rates players actually get.
//
// Run:  ./build/examples/scheduler_comparison

#include <algorithm>
#include <cstdio>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/corpus.h"
#include "gaugur/lab.h"
#include "gaugur/predictor.h"
#include "profiling/profiler.h"
#include "sched/assignment.h"
#include "sched/methodology.h"
#include "sched/study.h"

using namespace gaugur;

int main() {
  constexpr int kRequests = 1200;
  constexpr std::size_t kServers = 400;

  const auto catalog = gamesim::GameCatalog::MakeDefault(42);
  const gamesim::ServerSim server;
  const core::ColocationLab lab(catalog, server);

  std::printf("Profiling and training (offline)...\n");
  const profiling::Profiler profiler(server);
  core::FeatureBuilder features(
      profiler.ProfileCatalog(catalog, &common::ThreadPool::Global()));
  core::CorpusOptions corpus_options;
  corpus_options.num_pairs = 300;
  corpus_options.num_triples = 80;
  corpus_options.num_quads = 80;
  const auto corpus = core::GenerateCorpus(lab, corpus_options);

  core::GAugurPredictor predictor(features);
  predictor.TrainRm(corpus);
  baselines::VbpModel vbp(features);

  const auto setup = sched::SelectStudyGames(lab, 10, 60.0, 12);
  const auto counts =
      sched::GenerateRequestCounts(catalog.size(), setup.game_ids,
                                   kRequests, 3);
  const auto requests = sched::RequestStream(counts, 4);

  sched::AssignmentOptions options;
  options.num_servers = kServers;

  const auto rm_method = sched::MakeGAugurRmMethod(predictor);
  const auto rm_fleet =
      sched::AssignByPredictedFps(*rm_method, features, requests, options);
  const auto vbp_fleet =
      sched::AssignWorstFit(vbp, features, requests, options);

  const auto rm_fps = sched::EvaluateAssignment(lab, rm_fleet);
  const auto vbp_fps = sched::EvaluateAssignment(lab, vbp_fleet);

  auto report = [](const char* name, std::span<const double> fps) {
    std::printf("%-22s mean %6.1f  p10 %6.1f  median %6.1f  below 60: %4.1f%%\n",
                name, common::Mean(fps), common::Percentile(fps, 0.10),
                common::Percentile(fps, 0.50),
                100.0 *
                    static_cast<double>(std::count_if(
                        fps.begin(), fps.end(),
                        [](double f) { return f < 60.0; })) /
                    static_cast<double>(fps.size()));
  };
  std::printf("\nRealized FPS of %d requests on %zu servers:\n", kRequests,
              kServers);
  report("GAugur(RM) placement", rm_fps);
  report("VBP worst-fit", vbp_fps);
  std::printf(
      "\nInterference-aware placement packs noisy neighbors apart, so the "
      "same fleet delivers higher frame rates.\n");
  return 0;
}
