// trace_explorer: offline forensics over a fleet run's decision event
// log (the JSONL file quickstart and SimulateDynamicFleet-based drivers
// write via obs::EventLog).
//
// Default view: run summary + per-server timeline table (every event
// that touches a server, in sequence order). With --violation N the tool
// answers the forensics question end to end for the N-th qos_violation
// event: which decision placed the victim, what the predictor believed
// about every candidate at that moment (queries, cache hits, margins),
// and which resource / co-located offender the ground-truth attribution
// blames for the dip.
//
// Usage:
//   trace_explorer <events.jsonl> [report.json] [--violation N]
//
// Build & run:
//   cmake --build build && ./build/examples/quickstart
//   ./build/examples/trace_explorer bench_results/quickstart_events.jsonl

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/event_log.h"
#include "obs/report.h"

using gaugur::obs::Event;
using gaugur::obs::EventKind;
using gaugur::obs::EventKindName;
using gaugur::obs::JsonValue;

namespace {

/// Tolerant field accessors: the payload is kind-specific and optional
/// fields (e.g. candidate details) are simply absent for plain policies.
double NumField(const Event& event, const char* key, double fallback = -1.0) {
  const auto it = event.fields.find(key);
  if (it == event.fields.end() || !it->second.IsNumber()) return fallback;
  return it->second.AsNumber();
}

std::string StrField(const Event& event, const char* key) {
  const auto it = event.fields.find(key);
  if (it == event.fields.end() || !it->second.IsString()) return "";
  return it->second.AsString();
}

long long ServerOf(const Event& event) {
  return static_cast<long long>(NumField(event, "server", -1.0));
}

/// One-line human description of an event's payload.
std::string Describe(const Event& event) {
  char buf[256];
  switch (event.kind) {
    case EventKind::kArrival:
      std::snprintf(buf, sizeof(buf), "game %d arrives (%.0f min)",
                    static_cast<int>(NumField(event, "game_id")),
                    NumField(event, "duration_min"));
      return buf;
    case EventKind::kDecision:
      std::snprintf(buf, sizeof(buf),
                    "game %d -> server %lld (%d candidates, choice %d)",
                    static_cast<int>(NumField(event, "game_id")),
                    static_cast<long long>(NumField(event, "target_server")),
                    static_cast<int>(NumField(event, "num_candidates")),
                    static_cast<int>(NumField(event, "choice")));
      return buf;
    case EventKind::kDeparture:
      std::snprintf(buf, sizeof(buf), "request %lld departs",
                    static_cast<long long>(NumField(event, "request_index")));
      return buf;
    case EventKind::kPowerOn:
      return "server powered on";
    case EventKind::kPowerOff:
      return "server powered off";
    case EventKind::kQosViolation:
      std::snprintf(buf, sizeof(buf),
                    "game %d at %.1f FPS < QoS %.0f (%s, offender game %d)",
                    static_cast<int>(NumField(event, "victim_game")),
                    NumField(event, "realized_fps"),
                    NumField(event, "qos_fps"),
                    StrField(event, "dominant_resource").c_str(),
                    static_cast<int>(NumField(event, "offender_game")));
      return buf;
    case EventKind::kRetrain:
      std::snprintf(buf, sizeof(buf), "%s retrained on %lld rows",
                    StrField(event, "model").c_str(),
                    static_cast<long long>(NumField(event, "rows")));
      return buf;
  }
  return "?";
}

void PrintTimeline(const std::vector<Event>& events) {
  gaugur::common::Table table({"seq", "tick", "server", "decision", "kind",
                               "what"},
                              /*double_precision=*/2);
  for (const Event& event : events) {
    long long server = ServerOf(event);
    if (event.kind == EventKind::kDecision) {
      server = static_cast<long long>(NumField(event, "target_server"));
    }
    table.AddRow({static_cast<long long>(event.seq), event.tick,
                  server >= 0 ? gaugur::common::Cell(server)
                              : gaugur::common::Cell(std::string("-")),
                  event.decision_id != 0
                      ? gaugur::common::Cell(
                            static_cast<long long>(event.decision_id))
                      : gaugur::common::Cell(std::string("-")),
                  std::string(EventKindName(event.kind)), Describe(event)});
  }
  table.Print(std::cout, "fleet timeline");
}

/// The forensics join: violation -> decision -> candidate judgements ->
/// resource/offender attribution.
int ExplainViolation(const std::vector<Event>& events, std::size_t n) {
  std::vector<const Event*> violations;
  for (const Event& event : events) {
    if (event.kind == EventKind::kQosViolation) violations.push_back(&event);
  }
  if (n >= violations.size()) {
    std::fprintf(stderr, "violation %zu out of range: log has %zu\n", n,
                 violations.size());
    return 1;
  }
  const Event& violation = *violations[n];
  std::printf("violation %zu of %zu (event seq %llu, tick %.2f)\n", n,
              violations.size(),
              static_cast<unsigned long long>(violation.seq), violation.tick);
  std::printf(
      "  game %d on server %lld dipped to %.1f FPS (QoS floor %.0f)\n",
      static_cast<int>(NumField(violation, "victim_game")),
      ServerOf(violation), NumField(violation, "realized_fps"),
      NumField(violation, "qos_fps"));
  std::printf(
      "  attribution: dominant resource %s (slowdown +%.3f); removing "
      "co-located game %d would buy back %.1f FPS\n",
      StrField(violation, "dominant_resource").c_str(),
      NumField(violation, "dominant_damage", 0.0),
      static_cast<int>(NumField(violation, "offender_game")),
      NumField(violation, "offender_fps_gain", 0.0));

  if (violation.decision_id == 0) {
    std::printf("  no originating decision recorded (decision_id 0)\n");
    return 0;
  }
  const Event* decision = nullptr;
  for (const Event& event : events) {
    if (event.kind == EventKind::kDecision &&
        event.decision_id == violation.decision_id) {
      decision = &event;
      break;
    }
  }
  if (decision == nullptr) {
    std::printf("  decision %llu not in the log (ring dropped it?)\n",
                static_cast<unsigned long long>(violation.decision_id));
    return 0;
  }
  std::printf(
      "\ncaused by decision %llu (seq %llu, tick %.2f): game %d placed on "
      "server %lld out of %d open candidates\n",
      static_cast<unsigned long long>(decision->decision_id),
      static_cast<unsigned long long>(decision->seq), decision->tick,
      static_cast<int>(NumField(*decision, "game_id")),
      static_cast<long long>(NumField(*decision, "target_server")),
      static_cast<int>(NumField(*decision, "num_candidates")));

  const auto candidates_it = decision->fields.find("candidates");
  if (candidates_it == decision->fields.end() ||
      !candidates_it->second.IsArray()) {
    std::printf("  (policy published no per-candidate judgements)\n");
    return 0;
  }
  gaugur::common::Table table(
      {"candidate", "feasible", "memory_ok", "queries", "cache_hits",
       "min_margin"},
      /*double_precision=*/4);
  const auto& candidates = candidates_it->second.AsArray();
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const JsonValue& entry = candidates[c];
    auto num = [&](const char* key) {
      const JsonValue* v = entry.Find(key);
      return v != nullptr && v->IsNumber() ? v->AsNumber() : 0.0;
    };
    auto flag = [&](const char* key) {
      const JsonValue* v = entry.Find(key);
      return v != nullptr && v->IsBool() && v->AsBool();
    };
    table.AddRow({static_cast<long long>(c),
                  std::string(flag("feasible") ? "yes" : "no"),
                  std::string(flag("memory_ok") ? "yes" : "no"),
                  static_cast<long long>(num("queries")),
                  static_cast<long long>(num("cache_hits")),
                  num("min_margin")});
  }
  table.Print(std::cout, "what the predictor believed");
  return 0;
}

}  // namespace

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: trace_explorer <events.jsonl> [report.json] [--violation N]\n"
      "\n"
      "Offline forensics over a fleet run's decision event log.\n"
      "\n"
      "  <events.jsonl>  event log written via obs::EventLog (e.g. by the\n"
      "                  quickstart example)\n"
      "  [report.json]   optional RunReport; prints its forensics summary\n"
      "  --violation N   explain the N-th qos_violation event (0-based):\n"
      "                  the placement decision that caused it, what the\n"
      "                  predictor believed about every candidate, and the\n"
      "                  resource/offender the attribution blames\n"
      "  --help          print this message\n"
      "\n"
      "Without --violation, prints the run summary and the per-server\n"
      "fleet timeline.\n");
}

int main(int argc, char** argv) {
  std::string events_path;
  std::string report_path;
  bool explain = false;
  std::size_t violation_index = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    if (arg == "--violation") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--violation needs an index argument\n\n");
        PrintUsage(stderr);
        return 2;
      }
      explain = true;
      violation_index = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      // Unknown flags must not silently fall through as file paths.
      std::fprintf(stderr, "unknown flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else if (events_path.empty()) {
      events_path = arg;
    } else if (report_path.empty()) {
      report_path = arg;
    } else {
      std::fprintf(stderr, "unexpected extra argument %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (events_path.empty()) {
    PrintUsage(stderr);
    return 2;
  }

  std::vector<Event> events;
  if (!gaugur::obs::EventLog::ReadJsonl(events_path, &events)) {
    std::fprintf(stderr, "cannot read %s\n", events_path.c_str());
    return 1;
  }

  std::size_t by_kind[gaugur::obs::kNumEventKinds] = {};
  for (const Event& event : events) {
    ++by_kind[static_cast<std::size_t>(event.kind)];
  }
  std::printf("%zu events", events.size());
  bool first = true;
  for (std::size_t k = 0; k < gaugur::obs::kNumEventKinds; ++k) {
    if (by_kind[k] == 0) continue;
    std::printf("%s %zu %s", first ? ":" : ",", by_kind[k],
                EventKindName(static_cast<EventKind>(k)));
    first = false;
  }
  std::printf("\n");

  if (!report_path.empty()) {
    std::ifstream in(report_path);
    std::ostringstream text;
    text << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", report_path.c_str());
      return 1;
    }
    const gaugur::obs::RunReport report =
        gaugur::obs::RunReport::FromJsonString(text.str());
    if (report.forensics().has_value()) {
      const auto& forensics = *report.forensics();
      std::printf(
          "run report: %llu events (%llu dropped), %llu decisions, %llu "
          "violations (%llu linked to a decision)\n",
          static_cast<unsigned long long>(forensics.events),
          static_cast<unsigned long long>(forensics.events_dropped),
          static_cast<unsigned long long>(forensics.decisions),
          static_cast<unsigned long long>(forensics.violations),
          static_cast<unsigned long long>(forensics.violations_linked));
    } else {
      std::printf("run report %s has no forensics section\n",
                  report_path.c_str());
    }
  }

  if (explain) return ExplainViolation(events, violation_index);

  PrintTimeline(events);
  std::printf("\nhint: re-run with --violation N to trace a QoS violation "
              "back to its placement decision\n");
  return 0;
}
