// trace_explorer: offline forensics over a fleet run's telemetry — the
// monolithic JSONL event log quickstart writes by default, or a
// streaming-sink manifest directory (segments + manifest.json, see
// obs/stream.h). Manifest input is read lazily: views that only need a
// tick window open just the segments whose manifest ranges overlap it.
//
// Default view: run summary + per-server timeline table (every event
// that touches a server, in sequence order). With --violation N the tool
// answers the forensics question end to end for the N-th qos_violation
// event: which decision placed the victim, what the predictor believed
// about every candidate at that moment (queries, cache hits, margins),
// and which resource / co-located offender the ground-truth attribution
// blames for the dip. With --window S T it plots server S's realized
// FPS and dominant-resource pressure for ±K ticks around tick T
// (ASCII sparkline table), joined to the decisions and violations that
// touched the server in that window. The `alerts` subcommand renders the
// health engine's firing timeline (obs/health.h), each window joined to
// the qos_violation events and decision ids it overlaps. The `profile`
// subcommand renders the run report's decision-latency attribution
// (obs/latency_profiler.h): fleet and per-shard phase breakdowns,
// barrier / window-imbalance / cache-lock contention, and the slowest-K
// tail exemplars joined back to their decision events.
//
// Usage:
//   trace_explorer [alerts|profile] <events.jsonl|sink_dir> [report.json]
//                  [--violation N] [--window SERVER TICK] [--span K]
//
// Build & run:
//   cmake --build build && ./build/examples/quickstart
//   ./build/examples/trace_explorer bench_results/quickstart_events.jsonl
//   GAUGUR_SINK_DIR=sink ./build/examples/quickstart
//   ./build/examples/trace_explorer sink --window 0 120

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <set>

#include "common/table.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/report.h"
#include "obs/stream.h"
#include "resources/resource.h"

using gaugur::obs::Event;
using gaugur::obs::EventKind;
using gaugur::obs::EventKindName;
using gaugur::obs::JsonValue;
using gaugur::obs::Manifest;
using gaugur::obs::StreamManifest;
using gaugur::obs::TimeseriesPoint;

namespace {

/// Tolerant field accessors: the payload is kind-specific and optional
/// fields (e.g. candidate details) are simply absent for plain policies.
double NumField(const Event& event, const char* key, double fallback = -1.0) {
  const auto it = event.fields.find(key);
  if (it == event.fields.end() || !it->second.IsNumber()) return fallback;
  return it->second.AsNumber();
}

std::string StrField(const Event& event, const char* key) {
  const auto it = event.fields.find(key);
  if (it == event.fields.end() || !it->second.IsString()) return "";
  return it->second.AsString();
}

long long ServerOf(const Event& event) {
  if (event.kind == EventKind::kDecision) {
    return static_cast<long long>(NumField(event, "target_server", -1.0));
  }
  return static_cast<long long>(NumField(event, "server", -1.0));
}

/// Where the events come from: one JSONL file, or a sink directory whose
/// manifest lets us open only the segments a view actually needs.
struct TraceSource {
  bool is_manifest = false;
  std::string path;
  Manifest manifest;
  // Segment-read accounting, so the lazy-loading claim is checkable.
  std::size_t event_segments_loaded = 0;
  std::size_t timeseries_segments_loaded = 0;
};

bool OpenSource(const std::string& path, TraceSource* source) {
  source->path = path;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    source->is_manifest = true;
    if (!Manifest::Load(path, &source->manifest)) {
      std::fprintf(stderr, "cannot read %s/%s\n", path.c_str(),
                   gaugur::obs::kManifestFileName);
      return false;
    }
    return true;
  }
  source->is_manifest = false;
  return true;
}

const StreamManifest* FindStream(const TraceSource& source,
                                 const char* name) {
  const auto it = source.manifest.streams.find(name);
  return it == source.manifest.streams.end() ? nullptr : &it->second;
}

/// Sorted-merge invariant for segment reads: after the seq-sort, seqs
/// must be strictly increasing (a duplicate means two segments overlap —
/// a corrupt or double-written manifest), and within one shard of a
/// sharded fleet run, ticks must be non-decreasing (per-shard streams are
/// monotonic by construction; a regression means the shard tag or the
/// merge is wrong). Violations make the tool exit nonzero.
bool CheckMergedEventInvariants(const std::vector<Event>& events) {
  std::map<long long, double> shard_last_tick;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0 && events[i].seq <= events[i - 1].seq) {
      std::fprintf(stderr,
                   "merge invariant violated: duplicate/regressing seq %llu "
                   "(overlapping segments?)\n",
                   static_cast<unsigned long long>(events[i].seq));
      return false;
    }
    const auto shard_field = events[i].fields.find("shard");
    if (shard_field == events[i].fields.end()) continue;
    const auto shard = static_cast<long long>(shard_field->second.AsNumber());
    const auto last = shard_last_tick.find(shard);
    if (last != shard_last_tick.end() && events[i].tick < last->second) {
      std::fprintf(stderr,
                   "merge invariant violated: shard %lld tick regressed "
                   "%.6f -> %.6f at seq %llu\n",
                   shard, last->second, events[i].tick,
                   static_cast<unsigned long long>(events[i].seq));
      return false;
    }
    shard_last_tick[shard] = events[i].tick;
  }
  return true;
}

/// Loads the given event segments (by index) and merges them seq-sorted.
bool LoadEventSegments(TraceSource& source,
                       const std::vector<std::size_t>& indices,
                       std::vector<Event>* out) {
  const StreamManifest* stream = FindStream(source, gaugur::obs::kEventsStream);
  if (stream == nullptr) return true;
  for (std::size_t i : indices) {
    const std::string path = source.path + "/" + stream->segments[i].file;
    std::vector<Event> part;
    if (!gaugur::obs::EventLog::ReadJsonl(path, &part)) {
      std::fprintf(stderr, "cannot read segment %s\n", path.c_str());
      return false;
    }
    out->insert(out->end(), part.begin(), part.end());
    ++source.event_segments_loaded;
  }
  std::sort(out->begin(), out->end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return CheckMergedEventInvariants(*out);
}

std::vector<std::size_t> AllSegmentIndices(const StreamManifest* stream) {
  std::vector<std::size_t> indices;
  if (stream == nullptr) return indices;
  for (std::size_t i = 0; i < stream->segments.size(); ++i) {
    indices.push_back(i);
  }
  return indices;
}

/// Whole-log views (timeline, --violation): every event segment.
bool LoadAllEvents(TraceSource& source, std::vector<Event>* out) {
  if (!source.is_manifest) {
    return gaugur::obs::EventLog::ReadJsonl(source.path, out);
  }
  return LoadEventSegments(
      source, AllSegmentIndices(FindStream(source, gaugur::obs::kEventsStream)),
      out);
}

/// Timeseries points overlapping [lo, hi], reading only the segments
/// whose manifest tick range intersects the window.
bool LoadTimeseriesWindow(TraceSource& source, double lo, double hi,
                          std::vector<TimeseriesPoint>* out) {
  const StreamManifest* stream =
      FindStream(source, gaugur::obs::kTimeseriesStream);
  if (stream == nullptr) return true;
  for (std::size_t i : gaugur::obs::SelectSegmentsByTick(*stream, lo, hi)) {
    const std::string path = source.path + "/" + stream->segments[i].file;
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read segment %s\n", path.c_str());
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::vector<TimeseriesPoint> part =
        gaugur::obs::ParseTimeseriesJsonl(text.str());
    out->insert(out->end(), part.begin(), part.end());
    ++source.timeseries_segments_loaded;
  }
  std::sort(out->begin(), out->end(),
            [](const TimeseriesPoint& a, const TimeseriesPoint& b) {
              return a.seq < b.seq;
            });
  return true;
}

/// One-line human description of an event's payload.
std::string Describe(const Event& event) {
  char buf[256];
  switch (event.kind) {
    case EventKind::kArrival:
      std::snprintf(buf, sizeof(buf), "game %d arrives (%.0f min)",
                    static_cast<int>(NumField(event, "game_id")),
                    NumField(event, "duration_min"));
      return buf;
    case EventKind::kDecision:
      std::snprintf(buf, sizeof(buf),
                    "game %d -> server %lld (%d candidates, choice %d)",
                    static_cast<int>(NumField(event, "game_id")),
                    static_cast<long long>(NumField(event, "target_server")),
                    static_cast<int>(NumField(event, "num_candidates")),
                    static_cast<int>(NumField(event, "choice")));
      return buf;
    case EventKind::kDeparture:
      std::snprintf(buf, sizeof(buf), "request %lld departs",
                    static_cast<long long>(NumField(event, "request_index")));
      return buf;
    case EventKind::kPowerOn:
      return "server powered on";
    case EventKind::kPowerOff:
      return "server powered off";
    case EventKind::kQosViolation:
      std::snprintf(buf, sizeof(buf),
                    "game %d at %.1f FPS < QoS %.0f (%s, offender game %d)",
                    static_cast<int>(NumField(event, "victim_game")),
                    NumField(event, "realized_fps"),
                    NumField(event, "qos_fps"),
                    StrField(event, "dominant_resource").c_str(),
                    static_cast<int>(NumField(event, "offender_game")));
      return buf;
    case EventKind::kRetrain:
      std::snprintf(buf, sizeof(buf), "%s retrained on %lld rows",
                    StrField(event, "model").c_str(),
                    static_cast<long long>(NumField(event, "rows")));
      return buf;
    case EventKind::kAlert: {
      // Two shapes share the kind: lifecycle transitions (from/to) and
      // subscriber acknowledgements (action, no from/to).
      const std::string action = StrField(event, "action");
      if (!action.empty()) {
        std::snprintf(buf, sizeof(buf), "%s %s[%s] (value %.3f)",
                      action.c_str(), StrField(event, "rule").c_str(),
                      StrField(event, "label").c_str(),
                      NumField(event, "value", 0.0));
        return buf;
      }
      std::snprintf(buf, sizeof(buf), "%s[%s] %s -> %s (%.3f vs %.3f)",
                    StrField(event, "rule").c_str(),
                    StrField(event, "label").c_str(),
                    StrField(event, "from").c_str(),
                    StrField(event, "to").c_str(),
                    NumField(event, "value", 0.0),
                    NumField(event, "threshold", 0.0));
      return buf;
    }
  }
  return "?";
}

void PrintTimeline(const std::vector<Event>& events) {
  gaugur::common::Table table({"seq", "tick", "server", "decision", "kind",
                               "what"},
                              /*double_precision=*/2);
  for (const Event& event : events) {
    const long long server = ServerOf(event);
    table.AddRow({static_cast<long long>(event.seq), event.tick,
                  server >= 0 ? gaugur::common::Cell(server)
                              : gaugur::common::Cell(std::string("-")),
                  event.decision_id != 0
                      ? gaugur::common::Cell(
                            static_cast<long long>(event.decision_id))
                      : gaugur::common::Cell(std::string("-")),
                  std::string(EventKindName(event.kind)), Describe(event)});
  }
  table.Print(std::cout, "fleet timeline");
}

/// The forensics join: violation -> decision -> candidate judgements ->
/// resource/offender attribution.
int ExplainViolation(const std::vector<Event>& events, std::size_t n) {
  std::vector<const Event*> violations;
  for (const Event& event : events) {
    if (event.kind == EventKind::kQosViolation) violations.push_back(&event);
  }
  if (n >= violations.size()) {
    std::fprintf(stderr, "violation %zu out of range: log has %zu\n", n,
                 violations.size());
    return 1;
  }
  const Event& violation = *violations[n];
  std::printf("violation %zu of %zu (event seq %llu, tick %.2f)\n", n,
              violations.size(),
              static_cast<unsigned long long>(violation.seq), violation.tick);
  std::printf(
      "  game %d on server %lld dipped to %.1f FPS (QoS floor %.0f)\n",
      static_cast<int>(NumField(violation, "victim_game")),
      ServerOf(violation), NumField(violation, "realized_fps"),
      NumField(violation, "qos_fps"));
  std::printf(
      "  attribution: dominant resource %s (slowdown +%.3f); removing "
      "co-located game %d would buy back %.1f FPS\n",
      StrField(violation, "dominant_resource").c_str(),
      NumField(violation, "dominant_damage", 0.0),
      static_cast<int>(NumField(violation, "offender_game")),
      NumField(violation, "offender_fps_gain", 0.0));

  if (violation.decision_id == 0) {
    std::printf("  no originating decision recorded (decision_id 0)\n");
    return 0;
  }
  const Event* decision = nullptr;
  for (const Event& event : events) {
    if (event.kind == EventKind::kDecision &&
        event.decision_id == violation.decision_id) {
      decision = &event;
      break;
    }
  }
  if (decision == nullptr) {
    std::printf("  decision %llu not in the log (ring dropped it?)\n",
                static_cast<unsigned long long>(violation.decision_id));
    return 0;
  }
  std::printf(
      "\ncaused by decision %llu (seq %llu, tick %.2f): game %d placed on "
      "server %lld out of %d open candidates\n",
      static_cast<unsigned long long>(decision->decision_id),
      static_cast<unsigned long long>(decision->seq), decision->tick,
      static_cast<int>(NumField(*decision, "game_id")),
      static_cast<long long>(NumField(*decision, "target_server")),
      static_cast<int>(NumField(*decision, "num_candidates")));

  const auto candidates_it = decision->fields.find("candidates");
  if (candidates_it == decision->fields.end() ||
      !candidates_it->second.IsArray()) {
    std::printf("  (policy published no per-candidate judgements)\n");
    return 0;
  }
  gaugur::common::Table table(
      {"candidate", "feasible", "memory_ok", "queries", "cache_hits",
       "min_margin"},
      /*double_precision=*/4);
  const auto& candidates = candidates_it->second.AsArray();
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const JsonValue& entry = candidates[c];
    auto num = [&](const char* key) {
      const JsonValue* v = entry.Find(key);
      return v != nullptr && v->IsNumber() ? v->AsNumber() : 0.0;
    };
    auto flag = [&](const char* key) {
      const JsonValue* v = entry.Find(key);
      return v != nullptr && v->IsBool() && v->AsBool();
    };
    table.AddRow({static_cast<long long>(c),
                  std::string(flag("feasible") ? "yes" : "no"),
                  std::string(flag("memory_ok") ? "yes" : "no"),
                  static_cast<long long>(num("queries")),
                  static_cast<long long>(num("cache_hits")),
                  num("min_margin")});
  }
  table.Print(std::cout, "what the predictor believed");
  return 0;
}

// ---------------------------------------------------------------------------
// The alerts view: the health engine's firing timeline, each window
// joined back to the qos_violation events and decision ids it overlaps.

/// Comma-joins up to `max` values of `items`, then "+N more".
template <typename Container, typename Format>
std::string JoinList(const Container& items, std::size_t max,
                     Format format) {
  std::string out;
  std::size_t n = 0;
  for (const auto& item : items) {
    if (n == max) {
      out += " +" + std::to_string(items.size() - max) + " more";
      break;
    }
    if (n > 0) out += ",";
    out += format(item);
    ++n;
  }
  return out.empty() ? std::string("-") : out;
}

int AlertsView(const std::vector<Event>& events) {
  const std::vector<gaugur::obs::FiringWindow> windows =
      gaugur::obs::ExtractFiringWindows(events);
  if (windows.empty()) {
    std::printf("no alert firings in the log\n");
    return 0;
  }
  std::size_t resolved = 0;
  std::size_t joined_violations = 0;
  gaugur::common::Table table(
      {"fired", "resolved", "rule", "label", "sev", "value", "threshold",
       "violations", "decisions"},
      /*double_precision=*/2);
  for (const gaugur::obs::FiringWindow& window : windows) {
    const gaugur::obs::FiringWindowJoin join =
        gaugur::obs::JoinFiringWindow(window, events);
    if (window.resolved) ++resolved;
    joined_violations += join.violation_seqs.size();
    table.AddRow(
        {window.fired_tick,
         window.resolved
             ? gaugur::common::Cell(window.resolved_tick)
             : gaugur::common::Cell(std::string("(firing)")),
         window.rule,
         window.label.empty() ? std::string("-") : window.label,
         window.severity, window.value, window.threshold,
         JoinList(join.violation_seqs, 4,
                  [](std::uint64_t seq) {
                    return "#" + std::to_string(seq);
                  }),
         JoinList(join.decision_ids, 4, [](std::uint64_t id) {
           return std::to_string(id);
         })});
  }
  table.Print(std::cout, "alert timeline");
  std::printf(
      "\n%zu firing windows (%zu resolved, %zu still firing at end of "
      "log), %zu overlapping qos_violation events\n",
      windows.size(), resolved, windows.size() - resolved,
      joined_violations);
  std::printf(
      "hint: --violation N explains any of the joined violations; "
      "--window SERVER TICK plots the server around a firing\n");
  return 0;
}

// ---------------------------------------------------------------------------
// The profile view: the run report's decision-latency-attribution
// section (run_report/v5 "profile") rendered as fleet + per-shard phase
// breakdowns, the contention/imbalance tallies, and the slowest-K tail
// exemplars, each joined back to its decision event in the log.

const char* DominantPhase(
    const std::array<double, gaugur::obs::kNumPhases>& phase_us) {
  std::size_t best = 0;
  for (std::size_t p = 1; p < gaugur::obs::kNumPhases; ++p) {
    if (phase_us[p] > phase_us[best]) best = p;
  }
  return gaugur::obs::PhaseName(static_cast<gaugur::obs::Phase>(best)).data();
}

int ProfileView(const gaugur::obs::LatencyProfileSummary& profile,
                const std::vector<Event>& events) {
  using gaugur::obs::kNumPhases;
  using gaugur::obs::Phase;
  using gaugur::obs::PhaseName;

  // Fleet-wide phase breakdown, with each phase's share of the total
  // attributed (exclusive) time so the dominant phase is one glance away.
  double attributed_us = 0.0;
  for (const auto& stats : profile.fleet) attributed_us += stats.total_us;
  gaugur::common::Table fleet({"phase", "count", "total ms", "mean us",
                               "max us", "share %"},
                              /*double_precision=*/2);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const auto& stats = profile.fleet[p];
    if (stats.count == 0) continue;
    fleet.AddRow({std::string(PhaseName(static_cast<Phase>(p))),
                  static_cast<long long>(stats.count),
                  stats.total_us / 1000.0,
                  stats.total_us / static_cast<double>(stats.count),
                  stats.max_us,
                  attributed_us > 0.0
                      ? 100.0 * stats.total_us / attributed_us
                      : 0.0});
  }
  char title[96];
  std::snprintf(title, sizeof(title),
                "fleet phase breakdown (%llu decisions, %.2f ms attributed)",
                static_cast<unsigned long long>(profile.decisions),
                attributed_us / 1000.0);
  fleet.Print(std::cout, title);

  // Per-shard: where each shard spent its time and how long it idled at
  // the tick barrier. A single-shard (legacy) run collapses to one row.
  if (profile.shards.size() > 1) {
    gaugur::common::Table shards(
        {"shard", "decisions", "busy ms", "dominant phase", "barrier waits",
         "barrier ms"},
        /*double_precision=*/2);
    for (const auto& shard : profile.shards) {
      std::array<double, kNumPhases> phase_us{};
      double busy_us = 0.0;
      for (std::size_t p = 0; p < kNumPhases; ++p) {
        phase_us[p] = shard.phases[p].total_us;
        busy_us += phase_us[p];
      }
      shards.AddRow({static_cast<long long>(shard.shard),
                     static_cast<long long>(shard.decisions),
                     shard.window_busy_us > 0.0 ? shard.window_busy_us / 1000.0
                                                : busy_us / 1000.0,
                     std::string(DominantPhase(phase_us)),
                     static_cast<long long>(shard.barrier_waits),
                     shard.barrier_wait_us / 1000.0});
    }
    std::printf("\n");
    shards.Print(std::cout, "per-shard attribution");
  }

  // Contention: window imbalance (fast shards waiting on the straggler)
  // and prediction-cache stripe lock waits.
  std::printf("\n");
  gaugur::common::Table contention({"contention", "value"},
                                   /*double_precision=*/2);
  if (profile.imbalance.windows > 0) {
    contention.AddRow(
        {std::string("tick windows"),
         static_cast<long long>(profile.imbalance.windows)});
    contention.AddRow({std::string("shard spread mean us"),
                       profile.imbalance.spread_total_us /
                           static_cast<double>(profile.imbalance.windows)});
    contention.AddRow({std::string("shard spread max us"),
                       profile.imbalance.spread_max_us});
  }
  contention.AddRow(
      {std::string("cache lock acquisitions"),
       static_cast<long long>(profile.cache.acquisitions)});
  contention.AddRow({std::string("cache lock contended"),
                     static_cast<long long>(profile.cache.contended)});
  contention.AddRow({std::string("cache lock wait us"),
                     profile.cache.wait_us});
  contention.AddRow({std::string("cache lock wait max us"),
                     profile.cache.wait_max_us});
  contention.Print(std::cout, "shard / cache contention");

  // Tail exemplars: the slowest-K decisions with full phase breakdowns,
  // joined 1:1 back to their decision events. A missing join means the
  // bounded event ring dropped that decision, not a broken id.
  if (profile.exemplars.empty()) {
    std::printf("\nno tail exemplars recorded\n");
    return 0;
  }
  std::printf("\n");
  gaugur::common::Table tail({"rank", "decision", "tick", "shard",
                              "total us", "dominant phase", "placement"},
                             /*double_precision=*/2);
  std::size_t joined = 0;
  for (std::size_t rank = 0; rank < profile.exemplars.size(); ++rank) {
    const auto& exemplar = profile.exemplars[rank];
    const Event* decision = nullptr;
    for (const Event& event : events) {
      if (event.kind == EventKind::kDecision &&
          event.decision_id == exemplar.decision_id) {
        decision = &event;
        break;
      }
    }
    if (decision != nullptr) ++joined;
    tail.AddRow({static_cast<long long>(rank),
                 exemplar.decision_id != 0
                     ? gaugur::common::Cell(
                           static_cast<long long>(exemplar.decision_id))
                     : gaugur::common::Cell(std::string("-")),
                 exemplar.tick, static_cast<long long>(exemplar.shard),
                 exemplar.total_us, std::string(DominantPhase(exemplar.phase_us)),
                 decision != nullptr ? Describe(*decision)
                                     : std::string("(not in event log)")});
  }
  tail.Print(std::cout, "slowest decisions (tail exemplars)");
  std::printf(
      "\n%zu/%zu exemplars joined to a decision event; re-run with "
      "--violation N or --window SERVER TICK to dig into one\n",
      joined, profile.exemplars.size());
  return 0;
}

// ---------------------------------------------------------------------------
// The window view: ±K ticks of FPS + pressure around a point in time.

constexpr int kBarWidth = 12;

std::string Bar(double value, double lo, double hi) {
  if (!(hi > lo)) return std::string(kBarWidth, '#');
  const double unit = (value - lo) / (hi - lo);
  const int n = static_cast<int>(
      std::lround(std::clamp(unit, 0.0, 1.0) * kBarWidth));
  return std::string(static_cast<std::size_t>(n), '#');
}

/// One row of the window plot, derived from a timeseries sample (or,
/// for monolithic input with no timeseries stream, a violation event).
struct WindowRow {
  double tick = 0.0;
  long long games = -1;  // -1 = unknown (violation-derived row)
  double min_fps = 0.0;
  std::string dominant;
  double pressure = 0.0;
};

WindowRow RowFromSample(const gaugur::obs::ServerSample& sample) {
  WindowRow row;
  row.tick = sample.tick;
  row.games = static_cast<long long>(sample.slots.size());
  row.min_fps = sample.slots.empty() ? 0.0 : sample.slots.front().fps;
  // Dominant resource: the largest equilibrium pressure any slot sees on
  // any shared resource in this sample.
  double best = -1.0;
  std::size_t best_resource = 0;
  for (const gaugur::obs::SlotSample& slot : sample.slots) {
    row.min_fps = std::min(row.min_fps, slot.fps);
    for (std::size_t r = 0;
         r < slot.pressure.size() && r < gaugur::resources::kNumResources;
         ++r) {
      if (slot.pressure[r] > best) {
        best = slot.pressure[r];
        best_resource = r;
      }
    }
  }
  if (best >= 0.0) {
    row.dominant = std::string(
        gaugur::resources::Name(gaugur::resources::kAllResources[best_resource]));
    row.pressure = best;
  }
  return row;
}

int WindowView(TraceSource& source, long long server, double center,
               double span) {
  const double lo = center - span;
  const double hi = center + span;

  // Events: only the segments overlapping the window (all of them for a
  // monolithic file — there is nothing smaller to open).
  std::vector<Event> events;
  if (source.is_manifest) {
    const StreamManifest* stream =
        FindStream(source, gaugur::obs::kEventsStream);
    if (stream != nullptr &&
        !LoadEventSegments(
            source, gaugur::obs::SelectSegmentsByTick(*stream, lo, hi),
            &events)) {
      return 1;
    }
  } else if (!gaugur::obs::EventLog::ReadJsonl(source.path, &events)) {
    std::fprintf(stderr, "cannot read %s\n", source.path.c_str());
    return 1;
  }

  std::vector<TimeseriesPoint> points;
  if (source.is_manifest && !LoadTimeseriesWindow(source, lo, hi, &points)) {
    return 1;
  }

  // Rows: realized per-server state, preferring the full-fidelity
  // timeseries stream; a monolithic event log only knows realized FPS at
  // violation instants, so those become the fallback rows.
  std::vector<WindowRow> rows;
  for (const TimeseriesPoint& point : points) {
    if (static_cast<long long>(point.server) != server) continue;
    if (point.sample.tick < lo || point.sample.tick > hi) continue;
    rows.push_back(RowFromSample(point.sample));
  }
  if (rows.empty()) {
    for (const Event& event : events) {
      if (event.kind != EventKind::kQosViolation) continue;
      if (ServerOf(event) != server) continue;
      if (event.tick < lo || event.tick > hi) continue;
      WindowRow row;
      row.tick = event.tick;
      row.min_fps = NumField(event, "realized_fps", 0.0);
      row.dominant = StrField(event, "dominant_resource");
      row.pressure = NumField(event, "dominant_damage", 0.0);
      rows.push_back(row);
    }
  }

  // A server id nothing in the log has ever mentioned is a typo, not an
  // empty window: fail loudly with the ids that do exist. The happy path
  // stays lazy; only this error path opens every event segment.
  if (rows.empty()) {
    std::set<long long> known;
    auto note = [&known](long long id) {
      if (id >= 0) known.insert(id);
    };
    for (const Event& event : events) note(ServerOf(event));
    for (const TimeseriesPoint& point : points) {
      note(static_cast<long long>(point.server));
    }
    if (known.count(server) == 0 && source.is_manifest) {
      std::vector<Event> all;
      if (LoadAllEvents(source, &all)) {
        for (const Event& event : all) note(ServerOf(event));
      }
    }
    if (known.count(server) == 0) {
      std::fprintf(stderr, "unknown server id %lld; this log knows %s\n",
                   server,
                   known.empty()
                       ? "no servers at all"
                       : ("server ids " +
                          JoinList(known, 16,
                                   [](long long id) {
                                     return std::to_string(id);
                                   }))
                             .c_str());
      return 1;
    }
  }

  std::printf("server %lld, ticks %.2f..%.2f (center %.2f, span %.2f)\n",
              server, lo, hi, center, span);
  if (rows.empty()) {
    std::printf("no realized samples for server %lld in this window\n",
                server);
  } else {
    double fps_lo = rows.front().min_fps, fps_hi = rows.front().min_fps;
    double press_hi = 0.0;
    for (const WindowRow& row : rows) {
      fps_lo = std::min(fps_lo, row.min_fps);
      fps_hi = std::max(fps_hi, row.min_fps);
      press_hi = std::max(press_hi, row.pressure);
    }
    gaugur::common::Table table({"tick", "games", "min_fps", "fps",
                                 "dominant", "pressure", "load"},
                                /*double_precision=*/2);
    for (const WindowRow& row : rows) {
      table.AddRow(
          {row.tick,
           row.games >= 0 ? gaugur::common::Cell(row.games)
                          : gaugur::common::Cell(std::string("-")),
           row.min_fps, Bar(row.min_fps, fps_lo, fps_hi),
           row.dominant.empty() ? std::string("-") : row.dominant,
           row.pressure, Bar(row.pressure, 0.0, press_hi)});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "realized FPS / dominant pressure (fps %.1f..%.1f)",
                  fps_lo, fps_hi);
    table.Print(std::cout, title);
  }

  // The events that touched this server inside the window, with the
  // violation -> decision join inline.
  gaugur::common::Table event_table({"seq", "tick", "decision", "kind",
                                     "what"},
                                    /*double_precision=*/2);
  std::vector<const Event*> window_violations;
  for (const Event& event : events) {
    if (ServerOf(event) != server) continue;
    if (event.tick < lo || event.tick > hi) continue;
    event_table.AddRow(
        {static_cast<long long>(event.seq), event.tick,
         event.decision_id != 0
             ? gaugur::common::Cell(static_cast<long long>(event.decision_id))
             : gaugur::common::Cell(std::string("-")),
         std::string(EventKindName(event.kind)), Describe(event)});
    if (event.kind == EventKind::kQosViolation) {
      window_violations.push_back(&event);
    }
  }
  if (event_table.NumRows() > 0) {
    std::printf("\n");
    event_table.Print(std::cout, "events on this server in the window");
  }

  // Join each violation to its originating decision. The decision may
  // predate the window; for manifest input, lazily open older segments
  // (newest first) by seq until it turns up.
  for (const Event* violation : window_violations) {
    const std::uint64_t want = violation->decision_id;
    if (want == 0) continue;
    const Event* decision = nullptr;
    auto find_in = [&](const std::vector<Event>& haystack) -> const Event* {
      for (const Event& event : haystack) {
        if (event.kind == EventKind::kDecision && event.decision_id == want) {
          return &event;
        }
      }
      return nullptr;
    };
    decision = find_in(events);
    std::vector<Event> older;  // keeps lazily-loaded decisions alive
    if (decision == nullptr && source.is_manifest) {
      const StreamManifest* stream =
          FindStream(source, gaugur::obs::kEventsStream);
      if (stream != nullptr) {
        std::vector<std::size_t> earlier = gaugur::obs::SelectSegmentsBySeq(
            *stream, 0, violation->seq);
        for (auto it = earlier.rbegin();
             it != earlier.rend() && decision == nullptr; ++it) {
          older.clear();
          if (!LoadEventSegments(source, {*it}, &older)) break;
          decision = find_in(older);
        }
      }
    }
    if (decision != nullptr) {
      std::printf(
          "violation seq %llu <- decision %llu at tick %.2f: %s\n",
          static_cast<unsigned long long>(violation->seq),
          static_cast<unsigned long long>(want), decision->tick,
          Describe(*decision).c_str());
    } else {
      std::printf("violation seq %llu: decision %llu not found in the log\n",
                  static_cast<unsigned long long>(violation->seq),
                  static_cast<unsigned long long>(want));
    }
  }

  if (source.is_manifest) {
    const StreamManifest* ev = FindStream(source, gaugur::obs::kEventsStream);
    const StreamManifest* ts =
        FindStream(source, gaugur::obs::kTimeseriesStream);
    std::printf(
        "\nloaded %zu/%zu event segments, %zu/%zu timeseries segments\n",
        source.event_segments_loaded,
        ev != nullptr ? ev->segments.size() : 0,
        source.timeseries_segments_loaded,
        ts != nullptr ? ts->segments.size() : 0);
  }
  return 0;
}

}  // namespace

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: trace_explorer [alerts|profile] <events.jsonl|sink_dir> "
      "[report.json]\n"
      "                      [--violation N] [--window SERVER TICK]"
      " [--span K]\n"
      "\n"
      "Offline forensics over a fleet run's decision event log.\n"
      "\n"
      "  alerts          render the health engine's alert timeline: each\n"
      "                  firing window with the qos_violation events and\n"
      "                  decision ids it overlaps\n"
      "  profile         render the report's decision-latency attribution\n"
      "                  (run_report/v5 \"profile\" section): fleet and\n"
      "                  per-shard phase breakdowns, barrier / cache-lock\n"
      "                  contention, and the slowest-K tail exemplars\n"
      "                  joined to their decision events; needs the\n"
      "                  report.json argument\n"
      "  <events.jsonl>  event log written via obs::EventLog (e.g. by the\n"
      "                  quickstart example)\n"
      "  <sink_dir>      streaming-sink directory (manifest.json +\n"
      "                  segments); windowed views open only the segments\n"
      "                  they need\n"
      "  [report.json]   optional RunReport; prints its forensics summary\n"
      "  --violation N   explain the N-th qos_violation event (0-based):\n"
      "                  the placement decision that caused it, what the\n"
      "                  predictor believed about every candidate, and the\n"
      "                  resource/offender the attribution blames\n"
      "  --window S T    plot server S's realized FPS and dominant\n"
      "                  resource pressure around tick T, joined to the\n"
      "                  decisions/violations in the window\n"
      "  --span K        half-width of the --window view in ticks\n"
      "                  (default 30)\n"
      "  --help          print this message\n"
      "\n"
      "Without --violation/--window, prints the run summary and the\n"
      "per-server fleet timeline.\n");
}

int main(int argc, char** argv) {
  std::string events_path;
  std::string report_path;
  bool alerts = false;
  bool profile = false;
  bool explain = false;
  std::size_t violation_index = 0;
  bool window = false;
  long long window_server = 0;
  double window_tick = 0.0;
  double window_span = 30.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    if (arg == "--violation") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--violation needs an index argument\n\n");
        PrintUsage(stderr);
        return 2;
      }
      explain = true;
      violation_index = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--window") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "--window needs SERVER and TICK arguments\n\n");
        PrintUsage(stderr);
        return 2;
      }
      window = true;
      window_server = std::atoll(argv[++i]);
      window_tick = std::atof(argv[++i]);
    } else if (arg == "--span") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--span needs a tick-count argument\n\n");
        PrintUsage(stderr);
        return 2;
      }
      window_span = std::atof(argv[++i]);
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      // Unknown flags must not silently fall through as file paths.
      std::fprintf(stderr, "unknown flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else if (!alerts && !profile && events_path.empty() &&
               arg == "alerts") {
      alerts = true;
    } else if (!alerts && !profile && events_path.empty() &&
               arg == "profile") {
      profile = true;
    } else if (events_path.empty()) {
      events_path = arg;
    } else if (report_path.empty()) {
      report_path = arg;
    } else {
      std::fprintf(stderr, "unexpected extra argument %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (events_path.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  if (profile && report_path.empty()) {
    std::fprintf(stderr,
                 "the profile view needs the report.json argument (the "
                 "attribution lives in the run report)\n\n");
    PrintUsage(stderr);
    return 2;
  }

  TraceSource source;
  if (!OpenSource(events_path, &source)) return 1;
  if (source.is_manifest) {
    std::size_t segments = 0;
    for (const auto& [name, stream] : source.manifest.streams) {
      segments += stream.segments.size();
    }
    std::printf("manifest: %zu streams, %zu segments, backpressure %s%s\n",
                source.manifest.streams.size(), segments,
                source.manifest.backpressure.c_str(),
                source.manifest.finalized ? "" : " (NOT finalized)");
  }

  if (!report_path.empty()) {
    std::ifstream in(report_path);
    std::ostringstream text;
    text << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", report_path.c_str());
      return 1;
    }
    const gaugur::obs::RunReport report =
        gaugur::obs::RunReport::FromJsonString(text.str());
    if (profile) {
      if (!report.profile().has_value()) {
        std::fprintf(stderr,
                     "run report %s has no profile section (pre-v5 run, or "
                     "observability was disabled)\n",
                     report_path.c_str());
        return 1;
      }
      std::vector<Event> events;
      if (!LoadAllEvents(source, &events)) {
        std::fprintf(stderr, "cannot read %s\n", events_path.c_str());
        return 1;
      }
      return ProfileView(*report.profile(), events);
    }
    if (report.forensics().has_value()) {
      const auto& forensics = *report.forensics();
      std::printf(
          "run report: %llu events (%llu dropped), %llu decisions, %llu "
          "violations (%llu linked to a decision)\n",
          static_cast<unsigned long long>(forensics.events),
          static_cast<unsigned long long>(forensics.events_dropped),
          static_cast<unsigned long long>(forensics.decisions),
          static_cast<unsigned long long>(forensics.violations),
          static_cast<unsigned long long>(forensics.violations_linked));
    } else {
      std::printf("run report %s has no forensics section\n",
                  report_path.c_str());
    }
  }

  if (window) {
    return WindowView(source, window_server, window_tick, window_span);
  }

  std::vector<Event> events;
  if (!LoadAllEvents(source, &events)) {
    std::fprintf(stderr, "cannot read %s\n", events_path.c_str());
    return 1;
  }

  std::size_t by_kind[gaugur::obs::kNumEventKinds] = {};
  for (const Event& event : events) {
    ++by_kind[static_cast<std::size_t>(event.kind)];
  }
  std::printf("%zu events", events.size());
  bool first = true;
  for (std::size_t k = 0; k < gaugur::obs::kNumEventKinds; ++k) {
    if (by_kind[k] == 0) continue;
    std::printf("%s %zu %s", first ? ":" : ",", by_kind[k],
                EventKindName(static_cast<EventKind>(k)));
    first = false;
  }
  std::printf("\n");

  if (alerts) return AlertsView(events);
  if (explain) return ExplainViolation(events, violation_index);

  PrintTimeline(events);
  std::printf(
      "\nhint: re-run with --violation N to trace a QoS violation back to "
      "its placement decision, or --window SERVER TICK to plot the\n"
      "realized FPS/pressure around it\n");
  return 0;
}
