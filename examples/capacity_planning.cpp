// Capacity planning: how many servers does a game lineup need?
//
// A cloud-gaming operator picks a lineup of games, forecasts a daily
// request mix, and wants the smallest fleet that serves every request at
// 60 FPS. This example walks the full GAugur §5.1 workflow:
//   profile -> measure corpus -> train CM -> enumerate colocations ->
//   Algorithm 1 packing -> compare against no-colocation provisioning.
//
// Run:  ./build/examples/capacity_planning

#include <cstdio>
#include <memory>

#include "common/thread_pool.h"
#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/corpus.h"
#include "gaugur/lab.h"
#include "gaugur/predictor.h"
#include "profiling/profiler.h"
#include "sched/enumeration.h"
#include "sched/methodology.h"
#include "sched/packing.h"
#include "sched/study.h"

using namespace gaugur;

int main() {
  constexpr double kQos = 60.0;
  constexpr int kRequests = 2000;

  const auto catalog = gamesim::GameCatalog::MakeDefault(42);
  const gamesim::ServerSim server;
  const core::ColocationLab lab(catalog, server);

  std::printf("Profiling the catalog (offline, once)...\n");
  const profiling::Profiler profiler(server);
  core::FeatureBuilder features(
      profiler.ProfileCatalog(catalog, &common::ThreadPool::Global()));

  std::printf("Measuring a training corpus of colocations...\n");
  core::CorpusOptions corpus_options;
  corpus_options.num_pairs = 300;
  corpus_options.num_triples = 80;
  corpus_options.num_quads = 80;
  const auto corpus = core::GenerateCorpus(lab, corpus_options);

  core::PredictorConfig config;
  config.cm_decision_threshold = 0.7;  // QoS violations cost more
  core::GAugurPredictor predictor(features, config);
  const std::vector<double> qos_grid{45.0, 55.0, 60.0, 65.0, 75.0};
  predictor.TrainCm(corpus, qos_grid);

  // The lineup: eight games the operator offers.
  const auto setup = sched::SelectStudyGames(lab, 8, kQos, 12);
  std::printf("\nLineup:\n");
  for (int id : setup.game_ids) {
    std::printf("  %-40s solo %6.1f FPS\n", catalog[static_cast<std::size_t>(id)].name.c_str(),
                lab.TrueSoloFps({id, resources::k1080p}));
  }

  // Identify feasible colocations with the CM — every candidate scored
  // in one batched call — then pack.
  const auto candidates = sched::EnumerateColocations(setup.pool, 4);
  const auto verdicts = predictor.ScoreCandidates(kQos, candidates);
  std::vector<core::Colocation> feasible;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].size() == 1 || verdicts[i] != 0) {
      feasible.push_back(candidates[i]);
    }
  }
  std::printf("\nCM judged %zu of %zu candidate colocations feasible.\n",
              feasible.size(), candidates.size());

  const auto requests = sched::GenerateRequestCounts(
      catalog.size(), setup.game_ids, kRequests, 3);
  const auto packed = sched::PackRequests(feasible, requests);

  // Realized QoS check on the packed plan.
  std::size_t violations = 0, sessions = 0;
  for (const auto& colocation : packed.assignments) {
    for (double fps : lab.TrueFps(colocation)) {
      ++sessions;
      if (fps < kQos) ++violations;
    }
  }
  std::printf(
      "\nPlan: %zu servers for %d requests (no-colocation baseline: %d).\n"
      "Utilization gain: %.0f%%. Sessions violating %g FPS when the plan "
      "actually runs: %zu of %zu (%.1f%%).\n",
      packed.servers_used, kRequests, kRequests,
      100.0 * (1.0 - static_cast<double>(packed.servers_used) / kRequests),
      kQos, violations, sessions,
      100.0 * static_cast<double>(violations) /
          static_cast<double>(sessions));
  return 0;
}
