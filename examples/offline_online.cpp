// Offline/online split via persistence: the deployment shape GAugur is
// designed for. An offline job profiles the catalog, measures the corpus,
// trains the models, and writes everything to disk; each online scheduler
// instance loads the artifacts in milliseconds and serves predictions.
//
// Run:  ./build/examples/offline_online

#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/thread_pool.h"
#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/corpus.h"
#include "gaugur/lab.h"
#include "gaugur/training.h"
#include "ml/factory.h"
#include "ml/serialize.h"
#include "profiling/profile_io.h"
#include "profiling/profiler.h"

using namespace gaugur;

namespace {
constexpr const char* kProfilesPath = "/tmp/gaugur_profiles.txt";
constexpr const char* kRmPath = "/tmp/gaugur_rm.txt";
}  // namespace

static void OfflineJob() {
  std::printf("[offline] profiling catalog and training models...\n");
  const auto catalog = gamesim::GameCatalog::MakeDefault(42);
  const gamesim::ServerSim server;
  const core::ColocationLab lab(catalog, server);

  const profiling::Profiler profiler(server);
  const auto profiles =
      profiler.ProfileCatalog(catalog, &common::ThreadPool::Global());
  profiling::SaveProfilesToFile(kProfilesPath, profiles);

  core::FeatureBuilder features(profiles);
  core::CorpusOptions corpus_options;
  corpus_options.num_pairs = 300;
  corpus_options.num_triples = 80;
  corpus_options.num_quads = 80;
  const auto corpus = core::GenerateCorpus(lab, corpus_options);

  auto rm = ml::MakeRegressor("GBRT");
  rm->Fit(core::BuildRmDataset(features, corpus));
  ml::SaveRegressorToFile(kRmPath, *rm);
  std::printf("[offline] artifacts written to %s and %s\n", kProfilesPath,
              kRmPath);
}

static void OnlineService() {
  const auto start = std::chrono::steady_clock::now();
  core::FeatureBuilder features(
      profiling::LoadProfilesFromFile(kProfilesPath));
  const auto rm = ml::LoadRegressorFromFile(kRmPath);
  const auto load_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::printf("[online] loaded %zu profiles + RM in %.1f ms\n",
              features.NumGames(), load_ms);

  // Serve a prediction request: will "Warframe" hold 60 FPS next to two
  // specific neighbors at the player's resolutions?
  const core::SessionRequest victim{31, resources::k1080p};
  const std::vector<core::SessionRequest> corunners{
      {16, resources::k1080p}, {53, resources::k720p}};
  const auto x = features.RmFeatures(victim, corunners);
  const double degradation = std::clamp(rm->Predict(x), 0.01, 1.0);
  const double fps =
      degradation * features.Profile(victim.game_id).SoloFps(
                        victim.resolution);
  std::printf(
      "[online] %s with 2 co-runners: predicted %.0f%% of solo speed = "
      "%.1f FPS -> %s at 60 FPS QoS\n",
      features.Profile(victim.game_id).name.c_str(), 100.0 * degradation,
      fps, fps >= 60.0 ? "admit" : "reject");
}

int main() {
  OfflineJob();
  OnlineService();
  std::remove(kProfilesPath);
  std::remove(kRmPath);
  return 0;
}
