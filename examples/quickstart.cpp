// Quickstart: the full GAugur pipeline on a small scale.
//
//  1. Build the game catalog and the simulated server.
//  2. Profile a handful of games (sensitivity curves + intensities).
//  3. Measure a small colocation corpus and train the RM and CM.
//  4. Predict the interference of a fresh colocation and compare with
//     what actually happens when the games run together.
//  5. Run a short dynamic fleet under the provenance-aware policy and
//     dump the decision event log (JSONL, for examples/trace_explorer).
//  6. Dump the telemetry run report the pipeline accumulated along the
//     way (metrics table + JSON written next to the binary).
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "gamesim/catalog.h"
#include "gamesim/server_sim.h"
#include "gaugur/corpus.h"
#include "gaugur/lab.h"
#include "gaugur/predictor.h"
#include "obs/event_log.h"
#include "obs/health.h"
#include "obs/model_monitor.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/switch.h"
#include "profiling/profiler.h"
#include "sched/dynamic.h"

using namespace gaugur;

int main() {
  // Optional streaming telemetry: with GAUGUR_SINK_DIR set, a background
  // writer drains the event log / metrics / time series to rotating JSONL
  // segments while the run progresses, instead of one dump at the end.
  std::unique_ptr<obs::TelemetrySink> sink = obs::TelemetrySink::FromEnv();
  if (sink != nullptr) {
    std::printf("streaming telemetry to %s\n", sink->directory().c_str());
  }

  // 1. The "machine room": 100 games and one GTX-1060-class server.
  const auto catalog = gamesim::GameCatalog::MakeDefault(/*seed=*/42);
  const gamesim::ServerSim server;
  const core::ColocationLab lab(catalog, server);

  // 2. Offline contention-feature profiling (all 100 games).
  std::printf("Profiling %zu games...\n", catalog.size());
  const profiling::Profiler profiler(server);
  core::FeatureBuilder features(profiler.ProfileCatalog(catalog));

  // 3. Measure a corpus of real colocations and train both models.
  core::CorpusOptions corpus_options;
  corpus_options.num_pairs = 200;
  corpus_options.num_triples = 50;
  corpus_options.num_quads = 50;
  std::printf("Measuring %d training colocations...\n",
              corpus_options.num_pairs + corpus_options.num_triples +
                  corpus_options.num_quads);
  const auto corpus = core::GenerateCorpus(lab, corpus_options);

  core::GAugurPredictor predictor(features);
  predictor.TrainRm(corpus);
  const std::vector<double> qos_grid = {50.0, 60.0};
  predictor.TrainCm(corpus, qos_grid);

  // 4. Predict a fresh colocation, then actually run it.
  const core::Colocation colocation = {
      {catalog.ByName("Dota2").id, resources::k1080p},
      {catalog.ByName("Far Cry 4").id, resources::k1080p},
      {catalog.ByName("Stardew Valley").id, resources::k720p},
  };

  std::printf("\n%-24s %10s %10s %10s %6s\n", "game", "solo FPS",
              "predicted", "actual", "QoS60");
  const auto actual = lab.TrueFps(colocation);
  for (std::size_t v = 0; v < colocation.size(); ++v) {
    std::vector<core::SessionRequest> corunners;
    for (std::size_t j = 0; j < colocation.size(); ++j) {
      if (j != v) corunners.push_back(colocation[j]);
    }
    const auto& victim = colocation[v];
    const auto& profile = features.Profile(victim.game_id);
    const double predicted = predictor.PredictFps(victim, corunners);
    const bool qos_ok = predictor.PredictQosOk(60.0, victim, corunners);
    std::printf("%-24s %10.1f %10.1f %10.1f %6s\n", profile.name.c_str(),
                profile.SoloFps(victim.resolution), predicted, actual[v],
                qos_ok ? "yes" : "no");
  }
  std::printf("\ncolocation judged %s at 60 FPS QoS (ground truth: %s)\n",
              predictor.PredictFeasible(60.0, colocation) ? "FEASIBLE"
                                                          : "infeasible",
              lab.TrulyFeasible(colocation, 60.0) ? "FEASIBLE"
                                                  : "infeasible");

  // Close the loop for the model monitor: report each victim's realized
  // FPS under the same join key the predictor audited its calls with, so
  // the run report's model_monitor section carries joined outcomes.
  if (obs::Enabled()) {
    for (std::size_t v = 0; v < colocation.size(); ++v) {
      std::vector<core::SessionRequest> corunners;
      for (std::size_t j = 0; j < colocation.size(); ++j) {
        if (j != v) corunners.push_back(colocation[j]);
      }
      obs::ModelMonitor::Global().ObserveOutcome(
          core::ModelJoinKey(colocation[v], corunners), actual[v],
          /*qos_fps=*/60.0);
    }
  }

  // 5. A short dynamic-fleet run with the provenance-aware policy: every
  // arrival, placement decision (with per-candidate predictor verdicts),
  // power transition, and QoS violation lands in the event log, and each
  // server's FPS/pressure trajectory in the fleet time series — the raw
  // material for examples/trace_explorer.
  std::vector<int> fleet_games;
  for (std::size_t g = 0; g < 12 && g < catalog.size(); ++g) {
    fleet_games.push_back(static_cast<int>(g));
  }
  const auto trace = sched::GenerateDynamicTrace(
      fleet_games, /*horizon_min=*/240.0, /*arrivals_per_min=*/0.4,
      /*mean_duration_min=*/45.0, /*seed=*/7);
  sched::DynamicOptions fleet_options;
  fleet_options.qos_fps = 60.0;
  // Arm the fleet health engine with the default rule pack: the simulator
  // evaluates it every sim tick, alert lifecycle transitions land in the
  // event log (and the streamed sink), and the run report gains a
  // `health` section. `trace_explorer alerts <events>` joins the firing
  // windows back to the violations and decisions they overlap.
  if (obs::Enabled()) {
    obs::HealthEngine::Global().Reset();
    obs::HealthEngine::Global().InstallDefaultRules(fleet_options.qos_fps);
  }
  const sched::DynamicResult fleet = sched::SimulateDynamicFleet(
      lab, trace, sched::MakeProvenancePolicy(predictor, 60.0),
      fleet_options);
  std::printf(
      "\nfleet run: %zu sessions, peak %zu servers, %.0f server-minutes, "
      "%zu QoS-violated sessions\n",
      fleet.sessions, fleet.peak_servers, fleet.server_minutes,
      fleet.violated_sessions);
  if (obs::Enabled()) {
    const obs::HealthSummary health = obs::HealthEngine::Global().Summary();
    std::printf(
        "health: %llu evaluations, %llu alerts fired, %llu resolved, "
        "%llu firing at end\n",
        static_cast<unsigned long long>(health.evaluations),
        static_cast<unsigned long long>(health.alerts_fired),
        static_cast<unsigned long long>(health.alerts_resolved),
        static_cast<unsigned long long>(health.firing));
  }
  if (sink != nullptr) {
    // The sink drained the rings as the run went; seal the segments and
    // finalize the manifest instead of dumping a monolithic file.
    sink->Stop();
    const obs::Manifest manifest = sink->CurrentManifest();
    std::size_t segments = 0;
    for (const auto& [name, stream] : manifest.streams) {
      segments += stream.segments.size();
    }
    std::printf(
        "streamed telemetry: %zu segments across %zu streams in %s "
        "(explore with trace_explorer %s)\n",
        segments, manifest.streams.size(), sink->directory().c_str(),
        sink->directory().c_str());
  } else if (obs::Enabled() && !obs::EventLog::Global().Empty()) {
    const char* events_path = "bench_results/quickstart_events.jsonl";
    if (!obs::EventLog::Global().WriteJsonl(events_path)) {
      events_path = "quickstart_events.jsonl";
      obs::EventLog::Global().WriteJsonl(events_path);
    }
    std::printf("event log written to %s (explore with trace_explorer)\n",
                events_path);
  }

  // 6. Everything above was instrumented; capture the registry as a
  // structured run report.
  obs::RunReport report = obs::RunReport::Capture("quickstart");
  report.SetMeta("games_profiled", std::to_string(catalog.size()));
  std::printf("\n");
  report.Print(std::cout);
  // bench_results/ only exists when run from the repo root; fall back to
  // the current directory otherwise.
  const char* report_path = "bench_results/quickstart_report.json";
  if (!report.WriteJson(report_path)) {
    report_path = "quickstart_report.json";
    report.WriteJson(report_path);
  }
  std::printf("\nrun report written to %s\n", report_path);
  return 0;
}
